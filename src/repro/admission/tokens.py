"""Token buckets and seeded exponential backoff.

The front door's rate limiting is the classic token bucket: a bucket
holds up to ``burst`` tokens, refills at ``rate`` tokens per *virtual*
second, and an operation is admitted only if it can take its tokens now
-- there is no queueing, because in an overloaded managed cache a queued
request is just a slower rejection.  Refill is computed lazily from the
shared :class:`~repro.common.clock.Clock`, so buckets cost nothing while
idle and stay exact under the deterministic scheduler.

Backoff delays are exponential with *seeded* jitter: the repro-lint
``no-unseeded-random`` rule (and the sanitizer's replay guarantee)
forbids wall clocks and unseeded randomness, so jitter comes from a
``random.Random(seed)`` stream owned by the backoff instance -- the same
seed always yields the same delay sequence.
"""

from __future__ import annotations

from random import Random

from ..common.clock import Clock


class TokenBucket:
    """A refillable budget against the virtual clock.

    ``rate=None`` means unlimited (every acquire succeeds) -- the default
    posture, so admission control is inert until configured."""

    def __init__(self, clock: Clock, rate: float | None = None,
                 burst: float | None = None):
        self.clock = clock
        self.rate = rate
        self.capacity = float(burst if burst is not None else (rate or 0.0))
        self.tokens = self.capacity
        self._last_refill = clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        if now > self._last_refill and self.rate is not None:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self._last_refill) * self.rate,
            )
        self._last_refill = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks, never queues."""
        if self.rate is None:
            return True
        self._refill()
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    def deficit_delay(self, tokens: float = 1.0) -> float:
        """Virtual seconds until ``tokens`` would be available -- the
        ``retry_after`` hint handed to a shed caller."""
        if self.rate is None or self.rate <= 0:
            return 0.0
        self._refill()
        missing = tokens - self.tokens
        if missing <= 0:
            return 0.0
        return missing / self.rate


class ExponentialBackoff:
    """Deterministic exponential backoff with seeded jitter.

    ``delay(attempt)`` for attempt 1, 2, 3... grows by ``factor`` from
    ``base`` up to ``max_delay``, then multiplies by a jitter factor in
    ``[1 - jitter, 1]`` drawn from the seeded stream.  Jittering *down*
    keeps the cap honest while still decorrelating retry herds."""

    def __init__(self, *, base: float = 0.005, factor: float = 2.0,
                 max_delay: float = 0.25, jitter: float = 0.5, seed: int = 0):
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = Random(seed)

    def delay(self, attempt: int) -> float:
        raw = min(self.base * self.factor ** max(0, attempt - 1),
                  self.max_delay)
        return raw * (1.0 - self.jitter * self._rng.random())
