"""Per-service bulkhead compartments.

The bulkhead pattern partitions capacity by service class so one class's
storm cannot sink the others: every client is tagged with the service it
serves (``kv`` for application SDK handles, ``n1ql`` for the query
engine's internal data traffic), and all of a class's work draws on that
class's compartment.  An N1QL scan storm then exhausts the *n1ql*
compartment -- its queries get shed -- while KV point ops keep flowing
through their own, untouched compartment.

A compartment caps in-flight entries (nesting depth in this cooperative
simulator: a query holding a slot while its fetches run) and delegates
rate capping to a per-compartment :class:`~repro.admission.tokens.TokenBucket`
owned by the controller.  There is no queue: a full compartment rejects,
which is the point.
"""

from __future__ import annotations


class Bulkhead:
    """One named compartment: bounded concurrent occupancy."""

    def __init__(self, name: str, max_inflight: int | None = None):
        self.name = name
        self.max_inflight = max_inflight
        self.inflight = 0
        self.peak_inflight = 0
        self.rejected = 0

    @property
    def full(self) -> bool:
        return (self.max_inflight is not None
                and self.inflight >= self.max_inflight)

    def try_enter(self) -> bool:
        """Claim a slot; the caller must invoke :meth:`exit` exactly once
        per successful entry (use try/finally)."""
        if self.full:
            self.rejected += 1
            return False
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)
        return True

    def exit(self) -> None:
        self.inflight -= 1
