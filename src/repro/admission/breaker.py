"""Per-node circuit breakers for the RPC path.

A breaker watches the *overload* outcomes of calls to one node (quota
``TemporaryFailureError`` with a pressure tag) and trips after a run of
consecutive failures.  While open, callers fail fast instead of piling
retries onto a node that is already out of memory -- the load-shedding
half of the paper's TMPFAIL contract (section 4.3.3: the server says
"back off", so somebody has to actually back off).

State machine::

    closed --[threshold consecutive failures]--> open
    open   --[cooldown elapses]---------------> half-open
    half-open --[probe succeeds]--------------> closed
    half-open --[probe fails]-----------------> open (cooldown doubled)

Cooldowns are exponential with seeded jitter and are driven by the
deterministic scheduler: opening arms a virtual-time timer whose firing
moves the breaker to half-open, and ``allow()`` double-checks the clock
so the transition also happens if time advanced without draining timers.
No wall clock, no unseeded randomness -- repro-lint enforces both.
"""

from __future__ import annotations

from random import Random

from ..common.metrics import MetricsRegistry
from ..common.protomodel import protocol
from ..common.scheduler import Scheduler

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@protocol(
    # The docstring's machine, verbatim: closed trips open, open cools
    # down to half-open, and only a half-open probe outcome decides
    # between closing and re-opening.  OPEN->CLOSED is deliberately
    # absent: a success reported while open is a stale in-flight call,
    # and honoring it would reset the breaker mid-cooldown.
    "CLOSED->OPEN", "OPEN->HALF_OPEN",
    "HALF_OPEN->CLOSED", "HALF_OPEN->OPEN",
    field="state",
)
class CircuitBreaker:
    """Overload breaker for one target node."""

    def __init__(self, name: str, scheduler: Scheduler, *,
                 threshold: int = 5, cooldown: float = 0.25,
                 factor: float = 2.0, max_cooldown: float = 30.0,
                 jitter: float = 0.25, seed: int = 0,
                 metrics: MetricsRegistry | None = None):
        self.name = name
        self.scheduler = scheduler
        self.clock = scheduler.clock
        self.threshold = threshold
        self.base_cooldown = cooldown
        self.factor = factor
        self.max_cooldown = max_cooldown
        self.jitter = jitter
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._rng = Random(seed)
        self.state = CLOSED
        self.failures = 0
        self.open_until = 0.0
        self._cooldown = cooldown
        self._timer: int | None = None

    # -- queries -----------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?  In the open state this also
        performs the clock-driven open -> half-open transition, so a
        breaker recovers even if its timer was never pumped."""
        if self.state == OPEN:
            if self.clock.now() >= self.open_until:
                self._to_half_open()
                return True
            return False
        return True

    def remaining(self) -> float:
        """Virtual seconds left on the current cooldown (0 when not open);
        the ``retry_after`` hint for fail-fast rejections."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.open_until - self.clock.now())

    # -- outcome reporting -------------------------------------------------

    def record_success(self) -> None:
        # Only a half-open probe's success closes the breaker.  A late
        # success while OPEN (an in-flight call from before the trip)
        # says nothing about recovery and must not short the cooldown.
        if self.state == HALF_OPEN:
            self._close()
        self.failures = 0

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # The probe failed: the node is still saturated.
            self._open(escalate=True)
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.threshold:
            self._open(escalate=False)

    # -- transitions -------------------------------------------------------

    def _open(self, escalate: bool) -> None:
        if escalate:
            self._cooldown = min(self._cooldown * self.factor,
                                 self.max_cooldown)
        delay = self._cooldown * (1.0 + self.jitter * self._rng.random())
        self.state = OPEN
        self.open_until = self.clock.now() + delay
        self.metrics.inc("admission.breaker.opened")
        if self._timer is not None:
            self.scheduler.cancel(self._timer)
        self._timer = self.scheduler.call_at(self.open_until,
                                             self._on_cooldown_elapsed)

    def _on_cooldown_elapsed(self) -> None:
        self._timer = None
        if self.state == OPEN and self.clock.now() >= self.open_until:
            self._to_half_open()

    def _to_half_open(self) -> None:
        self.state = HALF_OPEN
        self.metrics.inc("admission.breaker.half_open")

    def _close(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self._cooldown = self.base_cooldown
        self.open_until = 0.0
        self.metrics.inc("admission.breaker.closed")
        if self._timer is not None:
            self.scheduler.cancel(self._timer)
            self._timer = None
