"""The admission-control front door.

One :class:`AdmissionController` per cluster sits between the clients
and the fabric and decides, before any work is done, whether a request
may enter.  It composes the pieces of this package:

* **token buckets** -- per-tenant (client handle) and per-service rate
  budgets refilled on the virtual clock;
* **bulkheads** -- per-service compartments (``kv`` vs ``n1ql``) so a
  scan storm exhausts only its own compartment;
* **circuit breakers** -- one per data node, tripped by pressure-tagged
  ``TemporaryFailureError`` outcomes, so saturated nodes see cheap
  rejections instead of retry storms;
* **backpressure** -- the engine's TMPFAIL metadata (flusher backlog,
  memory ratio, retry hint) feeds a decaying per-node pressure score
  that drives the degradation order: **shed N1QL before KV**.  Queries
  are refused at :meth:`admit_query` while the data path is elevated;
  KV point ops are only ever refused by their own budgets or an open
  breaker.

Everything is deterministic: time is the scheduler's virtual clock,
jitter comes from seeded ``random.Random`` streams, and the decay math
is a pure function of (score, elapsed virtual time).  Rejections raise
:class:`~repro.common.errors.AdmissionRejectedError`, a subclass of
``TemporaryFailureError``, so existing ``@declared_raises`` contracts
already cover the front door.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..common.crc import crc32
from ..common.errors import AdmissionRejectedError, declared_raises
from ..common.metrics import MetricsRegistry
from ..common.scheduler import Scheduler
from .breaker import CLOSED, CircuitBreaker
from .bulkhead import Bulkhead
from .tokens import ExponentialBackoff, TokenBucket

#: Registered mutable module state (declared-shared-state lint rule):
#: monotonic controller-id source, mixed into each controller's seeds so
#: two clusters in one process never share jitter streams.
__shared_state__ = ("_controller_ids",)

_controller_ids = itertools.count(1)

#: Prime seed mixer (same idiom as the scheduler's policy seeding).
_SEED_MIX = 1_000_003


@dataclass
class AdmissionConfig:
    """Tuning knobs.  With nothing configured the controller is pure
    observability (no rate caps, no inflight caps) -- but the moment a
    deployment opts into a service budget, tenants get real defaults:
    an unconfigured tenant is limited to :attr:`tenant_fair_share` of
    its service's budget, so one greedy handle cannot starve the
    tenants an operator actually provisioned.  Breakers and
    backpressure are always on."""

    #: Per-tenant token rate (ops per virtual second) and burst; None
    #: disables tenant throttling.
    tenant_rate: float | None = None
    tenant_burst: float | None = None
    #: Explicit per-tenant ``(rate, burst)`` overrides, e.g.
    #: ``{"analytics": (5.0, 2.0)}`` -- wins over every default.
    tenant_rates: dict = field(default_factory=dict)
    #: Fair-share default for tenants with no explicit budget: the
    #: fraction of the *service* budget one such tenant may consume.
    #: Only applies where ``service_rates`` names a budget, so the
    #: zero-config posture stays permissive.
    tenant_fair_share: float = 0.5
    #: Per-service (rate, burst) budgets, e.g. {"n1ql": (50.0, 10.0)}.
    service_rates: dict = field(default_factory=dict)
    #: Per-service in-flight caps, e.g. {"n1ql": 4}.
    service_inflight: dict = field(default_factory=dict)
    #: Per-node in-flight cap enforced at the fabric dispatch point.
    node_inflight: int | None = None
    #: Breaker: consecutive overload failures before opening, initial
    #: cooldown, growth factor, and cap (virtual seconds).
    breaker_threshold: int = 5
    breaker_cooldown: float = 0.25
    breaker_factor: float = 2.0
    breaker_max_cooldown: float = 30.0
    #: Client backoff ladder under overload.
    backoff_base: float = 0.005
    backoff_factor: float = 2.0
    backoff_max: float = 0.25
    #: Bounded scheduler rounds granted per backoff so the flusher/pager
    #: make progress without the old full-cluster quiesce.
    relief_steps: int = 2
    #: Pressure-score half-life (virtual seconds) and the score at which
    #: the degradation policy starts shedding N1QL.
    pressure_half_life: float = 0.5
    shed_threshold: float = 1.0
    #: Overload-signal weighting: a TMPFAIL's ``pending_writes`` adds
    #: one extra pressure point per this many queued mutations, and one
    #: signal's total weight never exceeds the cap.
    pressure_depth_scale: float = 256.0
    pressure_weight_cap: float = 4.0
    seed: int = 101


class AdmissionController:
    """Front door shared by every client of one cluster."""

    #: Population-keyed registries: ``_services`` holds one slot per
    #: service class ("kv", "n1ql"), ``_nodes`` and ``_breakers`` one
    #: per data node of the cluster topology -- bounded by construction,
    #: not by eviction.
    __bounds__ = ("_services", "_nodes", "_breakers")

    #: Decayed pressure scores below this are indistinguishable from
    #: "never overloaded" and are dropped, so `_pressure` holds only
    #: nodes with live incidents (found by repro-bounds: entries for
    #: long-recovered or removed nodes lingered forever).
    PRESSURE_FLOOR = 1e-4

    def __init__(self, scheduler: Scheduler, *,
                 config: AdmissionConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        self.scheduler = scheduler
        self.clock = scheduler.clock
        self.config = config if config is not None else AdmissionConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.controller_id = next(_controller_ids)
        seed = self.config.seed * _SEED_MIX + self.controller_id
        self._backoff = ExponentialBackoff(
            base=self.config.backoff_base,
            factor=self.config.backoff_factor,
            max_delay=self.config.backoff_max,
            seed=seed,
        )
        self._tenants: dict[str, TokenBucket] = {}
        self._services: dict[str, tuple[TokenBucket, Bulkhead]] = {}
        self._nodes: dict[str, Bulkhead] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        #: client name -> service class; only registered (client) traffic
        #: is subject to fabric-level admission -- internal pumps
        #: (replication, projector, XDCR) are never shed.
        self._clients: dict[str, str] = {}
        #: node -> (decaying overload score, virtual time of last update).
        self._pressure: dict[str, tuple[float, float]] = {}

    # -- registration ------------------------------------------------------

    def register_client(self, name: str, service: str) -> None:
        self._clients[name] = service

    def unregister_client(self, name: str) -> None:
        """Release a disconnected client's registration and its tenant
        token bucket.  Client handles get a fresh unique name on every
        connect, so without this the controller retained one bucket per
        connection ever made (found by repro-bounds)."""
        self._clients.pop(name, None)
        self._tenants.pop(name, None)

    # -- lazily-built parts ------------------------------------------------

    def _tenant_bucket(self, tenant: str, service: str) -> TokenBucket:
        bucket = self._tenants.get(tenant)
        if bucket is None:
            rate, burst = self._tenant_budget(tenant, service)
            bucket = TokenBucket(self.clock, rate, burst)
            self._tenants[tenant] = bucket
        return bucket

    def _tenant_budget(self, tenant: str,
                       service: str) -> tuple[float | None, float | None]:
        """Resolve one tenant's (rate, burst): explicit per-tenant
        override, then the global tenant default, then a fair share of
        the service budget (see :class:`AdmissionConfig`)."""
        explicit = self.config.tenant_rates.get(tenant)
        if explicit is not None:
            return explicit
        if self.config.tenant_rate is not None:
            return self.config.tenant_rate, self.config.tenant_burst
        rate, burst = self.config.service_rates.get(service, (None, None))
        if rate is not None:
            share = self.config.tenant_fair_share
            return rate * share, (burst * share if burst is not None
                                  else None)
        return None, None

    def _service_slot(self, service: str) -> tuple[TokenBucket, Bulkhead]:
        slot = self._services.get(service)
        if slot is None:
            rate, burst = self.config.service_rates.get(service, (None, None))
            slot = (
                TokenBucket(self.clock, rate, burst),
                Bulkhead(service, self.config.service_inflight.get(service)),
            )
            self._services[service] = slot
        return slot

    def _node_bulkhead(self, node: str) -> Bulkhead:
        bulkhead = self._nodes.get(node)
        if bulkhead is None:
            bulkhead = Bulkhead(node, self.config.node_inflight)
            self._nodes[node] = bulkhead
        return bulkhead

    def breaker(self, node: str) -> CircuitBreaker:
        """The circuit breaker guarding RPCs to ``node``."""
        breaker = self._breakers.get(node)
        if breaker is None:
            seed = (self.config.seed * _SEED_MIX + self.controller_id) \
                * _SEED_MIX + crc32(node.encode("utf-8"))
            breaker = CircuitBreaker(
                node, self.scheduler,
                threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
                factor=self.config.breaker_factor,
                max_cooldown=self.config.breaker_max_cooldown,
                seed=seed, metrics=self.metrics,
            )
            self._breakers[node] = breaker
        return breaker

    # -- admission ---------------------------------------------------------

    @declared_raises('AdmissionRejectedError')
    def acquire(self, service: str, tenant: str, ops: int = 1
                ) -> Callable[[], None] | None:
        """Admit ``ops`` operations for ``tenant`` on the ``service``
        compartment, or shed them.  Returns the compartment release
        callback (call exactly once, in a finally) or None when nothing
        was claimed."""
        self.metrics.inc("admission.requests", ops)
        tenant_bucket = self._tenant_bucket(tenant, service)
        if not tenant_bucket.try_acquire(ops):
            self.metrics.inc("admission.tenant.shed", ops)
            raise AdmissionRejectedError(
                f"tenant {tenant!r} over its rate budget",
                retry_after=tenant_bucket.deficit_delay(ops),
            )
        bucket, bulkhead = self._service_slot(service)
        if not bucket.try_acquire(ops):
            self._count_shed(service, ops)
            raise AdmissionRejectedError(
                f"{service} service over its rate budget",
                retry_after=bucket.deficit_delay(ops),
            )
        if not bulkhead.try_enter():
            self._count_shed(service, ops)
            raise AdmissionRejectedError(
                f"{service} bulkhead full "
                f"({bulkhead.inflight}/{bulkhead.max_inflight} in flight)"
            )
        return bulkhead.exit

    @declared_raises('AdmissionRejectedError')
    def admit_query(self, tenant: str = "n1ql") -> Callable[[], None] | None:
        """The query front door.  Degradation is ordered shed-N1QL-
        before-KV: whenever the data path reports overload (pressure
        score past threshold, or any breaker not closed) new queries are
        refused here, while KV point ops keep flowing."""
        if self.overloaded():
            self._count_shed("n1ql", 1)
            raise AdmissionRejectedError(
                "query shed: data service under memory pressure",
                retry_after=self.config.breaker_cooldown,
            )
        return self.acquire("n1ql", tenant)

    def _count_shed(self, service: str, ops: int) -> None:
        if service == "n1ql":
            self.metrics.inc("admission.n1ql.shed", ops)
        else:
            self.metrics.inc("admission.kv.shed", ops)

    # -- fabric hook -------------------------------------------------------

    @declared_raises('AdmissionRejectedError')
    def fabric_filter(self, src: str, dst: str, method: str
                      ) -> Callable[[], None] | None:
        """Installed as ``Network.call_filter``: runs before every
        dispatch.  Only traffic from registered clients is subject to
        admission; pump traffic (replication, projector, XDCR, manager)
        passes untouched.  Enforces the per-node in-flight bulkhead."""
        if src not in self._clients:
            return None
        self.metrics.inc("admission.fabric.calls")
        if self.config.node_inflight is None:
            return None
        bulkhead = self._node_bulkhead(dst)
        if not bulkhead.try_enter():
            self.metrics.inc("admission.fabric.shed")
            raise AdmissionRejectedError(
                f"node {dst!r} at in-flight capacity "
                f"({bulkhead.max_inflight})"
            )
        return bulkhead.exit

    # -- backpressure ------------------------------------------------------

    def note_overload(self, node: str, error: Exception | None = None) -> None:
        """Record a pressure-tagged temporary failure from ``node``,
        weighted by the server's own overload metadata: a TMPFAIL
        carrying a deep flusher backlog (``pending_writes``) or memory
        far past quota (``memory_ratio``) moves the score more than a
        marginal overshoot, so the shed threshold trips faster when the
        data path is deeply behind.  The score decays with virtual time
        so old incidents stop shedding."""
        now = self.clock.now()
        score = self._decayed_score(node, now)
        weight = 1.0
        if error is not None:
            pending = getattr(error, "pending_writes", None) or 0
            ratio = getattr(error, "memory_ratio", None) or 0.0
            weight += pending / self.config.pressure_depth_scale
            weight += max(0.0, ratio - 1.0)
            weight = min(weight, self.config.pressure_weight_cap)
        self._pressure[node] = (score + weight, now)
        self.metrics.inc("admission.overload_signals")
        self.metrics.observe("admission.overload_weight", weight)

    def _decayed_score(self, node: str, now: float) -> float:
        score, last = self._pressure.get(node, (0.0, now))
        if score <= 0.0:
            return 0.0
        elapsed = max(0.0, now - last)
        return score * 0.5 ** (elapsed / self.config.pressure_half_life)

    def pressure_score(self) -> float:
        """Cluster-wide pressure: the hottest node's decayed score.
        Entries decayed below :data:`PRESSURE_FLOOR` are pruned."""
        now = self.clock.now()
        worst = 0.0
        for node in sorted(self._pressure):
            score = self._decayed_score(node, now)
            if score < self.PRESSURE_FLOOR:
                self._pressure.pop(node)
            else:
                worst = max(worst, score)
        return worst

    def overloaded(self) -> bool:
        """True while the degradation policy should shed N1QL."""
        if self.pressure_score() >= self.config.shed_threshold:
            return True
        return any(b.state != CLOSED for b in self._breakers.values())

    @declared_raises('InvalidArgumentError')
    def backoff(self, attempt: int, hint: float | None = None) -> None:
        """Client-side reaction to one overload failure: a *bounded*
        number of scheduler rounds so the flusher and pager make
        progress, then an exponential-with-jitter virtual-time sleep
        (stretched to the server's ``retry_after`` hint).  This replaces
        the old ``run_until_idle()`` full-cluster quiesce per retry.

        Declared: driving the scheduler surfaces its policy-permutation
        guard (``InvalidArgumentError``) if a schedule policy is buggy."""
        for _ in range(self.config.relief_steps):
            if not self.scheduler.step():
                break
        delay = self._backoff.delay(attempt)
        if hint is not None:
            delay = max(delay, hint)
        self.metrics.inc("admission.backoffs")
        self.metrics.observe("admission.backoff_seconds", delay)
        self.scheduler.advance(delay)

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        now = self.clock.now()
        return {
            "pressure": {
                node: round(self._decayed_score(node, now), 4)
                for node in sorted(self._pressure)
            },
            "breakers": {
                node: breaker.state
                for node, breaker in sorted(self._breakers.items())
            },
            "bulkheads": {
                name: {"inflight": bh.inflight, "peak": bh.peak_inflight,
                       "rejected": bh.rejected}
                for name, (_bucket, bh) in sorted(self._services.items())
            },
            "metrics": self.metrics.snapshot(),
        }
