"""Cross datacenter replication (XDCR).

Section 4.6: XDCR replicates active data between geographically separate
clusters for disaster recovery or data locality.  It is

* **per bucket** -- each replication binds one source bucket to one
  target bucket, optionally **filtered** by a regular expression on the
  document ID;
* **a DCP consumer** -- it streams in-memory mutations from the source's
  active vBuckets;
* **topology aware** -- documents are re-routed by the *target's*
  cluster map (the clusters may have different node counts and even
  different vBucket counts), and a failed-over target node just means
  the stream routes to the new active;
* **eventually consistent** across clusters, with the deterministic
  conflict resolution of section 4.6.1 (implemented in the KV engine's
  ``set_with_meta``), which makes the system CP within a cluster but AP
  across clusters.

Bidirectional replication is two :class:`XdcrReplication` objects, one
per direction; the shared conflict-resolution rule guarantees both sides
converge on the same winner.
"""

from __future__ import annotations

import re
from enum import Enum

from ..common.errors import (
    BucketNotFoundError,
    LivelockError,
    NodeDownError,
    NotMyVBucketError,
    declared_raises,
)
from ..common.metrics import MetricsRegistry
from ..common.protomodel import protocol
from ..dcp.messages import Deletion, Mutation
from ..dcp.producer import DcpStream
from ..kv.types import VBucketState


@protocol(
    # A slot streams until its push fails or the source topology stops
    # wanting it; FAILED is a one-way door to CLOSED -- a failed stream
    # already consumed mutations it could not deliver, so it must never
    # resume (the replicator opens a *fresh* stream from seqno 0 and
    # conflict resolution dedups the replayed prefix).
    "STREAMING->FAILED", "STREAMING->CLOSED", "FAILED->CLOSED",
)
class XdcrStreamState(Enum):
    STREAMING = "streaming"
    FAILED = "failed"
    CLOSED = "closed"


class XdcrStream:
    """One (source node, vBucket) replication slot: the DCP stream plus
    its delivery lifecycle state."""

    def __init__(self, stream: DcpStream):
        self.stream = stream
        self.state = XdcrStreamState.STREAMING


class XdcrReplication:
    """One direction of replication between two clusters."""

    BATCH = 128

    def __init__(self, source_cluster, target_cluster, bucket: str,
                 target_bucket: str | None = None,
                 filter_pattern: str | None = None):
        self.source = source_cluster
        self.target = target_cluster
        self.bucket = bucket
        self.target_bucket = target_bucket or bucket
        self.filter = re.compile(filter_pattern) if filter_pattern else None
        #: (node_name, vbucket) -> XdcrStream slot
        self._streams: dict[tuple[str, int], XdcrStream] = {}
        self.paused = False
        self.docs_sent = 0
        self.docs_filtered = 0
        self.metrics = MetricsRegistry()
        self.name = f"xdcr/{bucket}->{self.target_bucket}"
        source_cluster.scheduler.register(self.name, self.pump)

    def stop(self) -> None:
        self.source.scheduler.unregister(self.name)
        for key in list(self._streams):
            self._retire(key)

    def _retire(self, key: tuple[str, int]) -> None:
        """Close and forget one slot (topology change or shutdown)."""
        slot = self._streams.pop(key)
        if slot.state is not XdcrStreamState.CLOSED:
            slot.state = XdcrStreamState.CLOSED
        self.metrics.inc("xdcr.stream_closed")

    # -- the pump ------------------------------------------------------------------

    @declared_raises('CorruptFileError', 'InvalidArgumentError',
                     'KeyNotFoundError', 'TemporaryFailureError')
    def pump(self) -> bool:
        if self.paused:
            return False
        self._sync_streams()
        moved = False
        for key, slot in list(self._streams.items()):
            for message in slot.stream.take(self.BATCH):
                if not isinstance(message, (Mutation, Deletion)):
                    continue
                if self.filter is not None and not self.filter.search(
                    message.doc.key
                ):
                    self.docs_filtered += 1
                    continue
                if self._push(message.doc):
                    moved = True
                else:
                    # Delivery failed (target down, partitioned, or
                    # repartitioned mid-stream).  The stream already
                    # consumed this mutation, so silently continuing
                    # would drop it forever: fail the slot and retire it
                    # -- _sync_streams reopens a fresh stream from seqno
                    # 0 and conflict resolution dedups the replayed
                    # prefix.  Not counted as progress, so a persistently
                    # unreachable target still lets the scheduler quiesce.
                    if slot.state is XdcrStreamState.STREAMING:
                        slot.state = XdcrStreamState.FAILED
                    self.metrics.inc("xdcr.stream_failed")
                    self._retire(key)
                    break
        return moved

    def _sync_streams(self) -> None:
        """Track the source topology: one stream per (node, active vb)."""
        manager = self.source.manager
        wanted: set[tuple[str, int]] = set()
        for node_name in manager.data_nodes():
            if self.source.network.is_down(node_name):
                continue
            node = manager.nodes[node_name]
            engine = node.engines.get(self.bucket)
            if engine is None:
                continue
            for vbucket_id in engine.owned_vbuckets(VBucketState.ACTIVE):
                wanted.add((node_name, vbucket_id))
        for key in list(self._streams):
            if key not in wanted:
                self._retire(key)
        for node_name, vbucket_id in wanted:
            if (node_name, vbucket_id) in self._streams:
                continue
            producer = self.source.manager.nodes[node_name].producers[self.bucket]
            try:
                self._streams[(node_name, vbucket_id)] = XdcrStream(
                    producer.stream_request(
                        vbucket_id, start_seqno=0, allow_replica=False,
                    )
                )
                self.metrics.inc("xdcr.stream_opened")
            # Vbucket moved mid-sweep; next pump re-derives streams.
            # repro-flow: disable-next=swallowed-exception
            except NotMyVBucketError:
                continue

    # -- pushing to the target cluster ---------------------------------------------

    def _push(self, doc) -> bool:
        """Route one document to the target cluster's active node for the
        key (the *target's* partitioning, section 4.6: topology aware).

        Delivery goes through the target cluster's network fabric -- not
        straight into the engine -- so a down or partitioned target node
        rejects the push the way it rejects any RPC.  Returns False when
        the document could not be delivered."""
        target_map = self.target.manager.cluster_maps.get(self.target_bucket)
        if target_map is None:
            return False
        vbucket_id = target_map.vbucket_for_key(doc.key)
        node_name = target_map.active_node(vbucket_id)
        if node_name is None:
            return False
        try:
            self.target.network.call(
                self.name, node_name, "kv_set_with_meta",
                self.target_bucket, vbucket_id, doc,
            )
        except (NodeDownError, NotMyVBucketError, BucketNotFoundError):
            return False
        self.docs_sent += 1
        return True

    # -- helpers ---------------------------------------------------------------------

    def backlog(self) -> int:
        """Mutations not yet streamed (approximate, for tests/stats)."""
        total = 0
        for slot in self._streams.values():
            stream = slot.stream
            total += max(0, stream.vb.high_seqno - stream.last_seqno)
        return total


def settle(*clusters) -> None:
    """Drive every involved cluster's scheduler until all replication
    (including bidirectional XDCR ping-pong) quiesces."""
    for _round in range(1000):
        progressed = False
        for cluster in clusters:
            if cluster.scheduler.step():
                progressed = True
        if not progressed:
            return
    raise LivelockError("XDCR did not settle (replication ping-pong?)")
