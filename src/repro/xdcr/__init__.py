"""Cross datacenter replication: per-bucket, filtered, topology-aware
replication between clusters with deterministic conflict resolution
(section 4.6)."""

from .replicator import XdcrReplication, settle

__all__ = ["XdcrReplication", "settle"]
