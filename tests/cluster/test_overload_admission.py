"""Client-path overload behavior: the TMPFAIL quiesce-spin fix and the
per-node circuit breaker, measured end to end through ``SmartClient``.

The seed client answered every ``TemporaryFailureError`` with a full
``scheduler.run_until_idle()`` -- an unbounded cluster-wide quiesce per
retry.  With the admission controller wired (the default), the client
takes ``relief_steps`` bounded scheduler rounds plus a seeded
virtual-time backoff instead, and a run of pressure-tagged failures
trips the node's breaker so further attempts fail fast without an RPC.
"""

import pytest

from repro import Cluster
from repro.admission import CLOSED, HALF_OPEN, OPEN
from repro.common.errors import AdmissionRejectedError, TemporaryFailureError

QUOTA = 64 * 1024
VALUE = "x" * 4096


def _drive(admission) -> tuple[int, int]:
    """Push a write-heavy load through a small quota and count the
    scheduler rounds the whole exercise consumed.  The outer driver
    retries client-visible temporary failures the way an application
    would: wait a beat, try again."""
    cluster = Cluster(nodes=3, vbuckets=32, admission=admission)
    cluster.create_bucket("b", replicas=1, quota_bytes=QUOTA,
                          expiry_pager_interval=None)
    client = cluster.connect()
    scheduler = cluster.scheduler
    start = scheduler._round
    completed = 0
    for i in range(600):
        key = f"k{i % 200}"
        for _attempt in range(20):
            try:
                client.upsert("b", key, VALUE)
                completed += 1
                break
            except TemporaryFailureError:
                cluster.tick(0.05)
        else:
            pytest.fail(f"upsert of {key!r} never completed")
    return completed, scheduler._round - start


class TestQuiesceSpinReplacement:
    def test_bounded_backoff_beats_quiesce_spin(self):
        """Same workload, same success count -- the admission path does
        it in substantially fewer scheduler rounds because each retry
        no longer drains the entire cluster."""
        legacy_done, legacy_rounds = _drive(False)
        guarded_done, guarded_rounds = _drive(True)
        assert legacy_done == guarded_done == 600
        assert guarded_rounds * 1.5 < legacy_rounds, (
            f"admission path used {guarded_rounds} rounds vs "
            f"{legacy_rounds} for the quiesce spin -- regression in the "
            f"bounded-backoff client"
        )

    def test_backoff_advances_virtual_time_and_is_counted(self):
        cluster = Cluster(nodes=1, vbuckets=8)
        cluster.create_bucket("b", replicas=0, quota_bytes=16 * 1024,
                              expiry_pager_interval=None)
        client = cluster.connect()
        before = cluster.clock.now()
        for i in range(8):
            client.upsert("b", f"k{i}", "y" * 2048)
        metrics = cluster.admission.metrics
        if metrics.counter_value("admission.backoffs"):
            assert cluster.clock.now() > before
        # The engine reported pressure at least once on this tiny quota
        # and every signal was recorded for the degradation policy.
        engine = cluster.node("node1").engines["b"]
        assert metrics.counter_value("admission.overload_signals") \
            == engine.metrics.counter_value("kv.tmpfails")


class TestClientBreakerPath:
    """Sustained pressure trips the per-node breaker *through* the
    public client API; recovery is timer-driven on the virtual clock."""

    @pytest.fixture
    def overloaded(self):
        # A value that can never fit: every attempt TMPFAILs with a
        # pressure tag, so one doomed upsert walks the whole ladder
        # (threshold failures -> breaker opens -> fail fast).
        cluster = Cluster(nodes=1, vbuckets=8)
        cluster.create_bucket("b", replicas=0, quota_bytes=32 * 1024,
                              expiry_pager_interval=None)
        client = cluster.connect()
        with pytest.raises(AdmissionRejectedError):
            client.upsert("b", "doomed", "z" * (64 * 1024))
        return cluster, client

    def test_sustained_overload_opens_the_breaker(self, overloaded):
        cluster, _client = overloaded
        breaker = cluster.admission.breaker("node1")
        assert breaker.state == OPEN
        assert cluster.admission.overloaded()

    def test_open_breaker_fails_fast_without_rpc(self, overloaded):
        cluster, client = overloaded
        calls_before = cluster.admission.metrics.counter_value(
            "admission.fabric.calls")
        rounds_before = cluster.scheduler._round
        with pytest.raises(AdmissionRejectedError) as exc_info:
            client.upsert("b", "small", "v")
        assert exc_info.value.retry_after > 0.0
        # No RPC reached the fabric and no scheduler work was burned.
        assert cluster.admission.metrics.counter_value(
            "admission.fabric.calls") == calls_before
        assert cluster.scheduler._round == rounds_before

    def test_timer_driven_recovery_closes_the_breaker(self, overloaded):
        cluster, client = overloaded
        breaker = cluster.admission.breaker("node1")
        cluster.tick(breaker.remaining() + 0.01)
        assert breaker.state == HALF_OPEN
        # The half-open probe is a viable op; success closes the breaker
        # and normal traffic resumes.
        client.upsert("b", "small", "v")
        assert breaker.state == CLOSED
        assert client.get("b", "small").value == "v"
        # The decaying pressure score lags the breaker by design; once
        # it halves below the shed threshold queries come back too.
        cluster.tick(5.0)
        assert not cluster.admission.overloaded()

    def test_semantic_tmpfail_still_raises_immediately(self):
        """A TMPFAIL without a retry hint (counter on a non-integer doc)
        is not overload: it must surface unchanged, never feed the
        breaker, never back off."""
        cluster = Cluster(nodes=1, vbuckets=8)
        cluster.create_bucket("b", replicas=0)
        client = cluster.connect()
        client.upsert("b", "doc", {"not": "an int"})
        with pytest.raises(TemporaryFailureError) as exc_info:
            client.counter("b", "doc", 1)
        assert not isinstance(exc_info.value, AdmissionRejectedError)
        assert cluster.admission.breaker("node1").state == CLOSED
        assert cluster.admission.metrics.counter_value(
            "admission.backoffs") == 0
