"""Tests for the cluster map and placement planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster_map import plan_map


class TestPlanFresh:
    def test_single_node_no_replicas_possible(self):
        cluster_map = plan_map(["n1"], num_vbuckets=16, num_replicas=1)
        for chain in cluster_map.chains:
            assert chain[0] == "n1"
            assert chain[1] is None

    def test_active_spread_even(self):
        cluster_map = plan_map(["n1", "n2", "n3", "n4"], num_vbuckets=64)
        stats = cluster_map.stats()
        assert all(count == 16 for count in stats["active_per_node"].values())

    def test_replica_never_colocated_with_active(self):
        cluster_map = plan_map(["n1", "n2", "n3"], num_vbuckets=48, num_replicas=2)
        for chain in cluster_map.chains:
            assigned = [n for n in chain if n is not None]
            assert len(assigned) == len(set(assigned))

    def test_replica_count_capped_by_nodes(self):
        cluster_map = plan_map(["n1", "n2"], num_vbuckets=8, num_replicas=3)
        for chain in cluster_map.chains:
            assert len([n for n in chain if n is not None]) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_map([], num_vbuckets=8)
        with pytest.raises(ValueError):
            plan_map(["n1"], num_vbuckets=8, num_replicas=9)

    def test_deterministic(self):
        a = plan_map(["n2", "n1"], num_vbuckets=32)
        b = plan_map(["n1", "n2"], num_vbuckets=32)
        assert a.chains == b.chains


class TestPlanIncremental:
    def test_add_node_moves_minimally(self):
        before = plan_map(["n1", "n2", "n3"], num_vbuckets=60)
        after = plan_map(["n1", "n2", "n3", "n4"], num_vbuckets=60, previous=before)
        moved = sum(
            1 for vb in range(60)
            if before.chains[vb][0] != after.chains[vb][0]
        )
        # Perfectly minimal would be 15 (60/4); allow slack but far less
        # than a full reshuffle.
        assert moved <= 25
        assert after.revision == before.revision + 1

    def test_add_node_balances(self):
        before = plan_map(["n1", "n2"], num_vbuckets=64)
        after = plan_map(["n1", "n2", "n3", "n4"], num_vbuckets=64, previous=before)
        counts = after.stats()["active_per_node"]
        assert set(counts) == {"n1", "n2", "n3", "n4"}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_remove_node_reassigns_its_vbuckets(self):
        before = plan_map(["n1", "n2", "n3"], num_vbuckets=48, num_replicas=1)
        after = plan_map(["n1", "n2"], num_vbuckets=48, num_replicas=1,
                         previous=before)
        assert "n3" not in after.nodes_in_use()
        assert after.stats()["unassigned_active"] == 0

    def test_remove_node_promotes_surviving_replica(self):
        before = plan_map(["n1", "n2", "n3"], num_vbuckets=48, num_replicas=1)
        after = plan_map(["n1", "n2"], num_vbuckets=48, num_replicas=1,
                         previous=before)
        kept = total = 0
        for vb in range(48):
            old_chain = before.chains[vb]
            if old_chain[0] == "n3" and old_chain[1] in ("n1", "n2"):
                total += 1
                # The surviving replica usually becomes active (the data
                # is already there); later balancing may swap a few.
                if after.chains[vb][0] == old_chain[1]:
                    kept += 1
        assert total > 0
        assert kept >= total // 2

    def test_replicas_stay_disjoint_after_replan(self):
        before = plan_map(["n1", "n2", "n3", "n4"], num_vbuckets=64, num_replicas=2)
        after = plan_map(["n1", "n2", "n3"], num_vbuckets=64, num_replicas=2,
                         previous=before)
        for chain in after.chains:
            assigned = [n for n in chain if n is not None]
            assert len(assigned) == len(set(assigned))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.sampled_from(["n1", "n2", "n3", "n4", "n5"]),
                 min_size=1, max_size=5, unique=True),
        st.lists(st.sampled_from(["n1", "n2", "n3", "n4", "n5"]),
                 min_size=1, max_size=5, unique=True),
        st.integers(0, 2),
    )
    def test_replan_invariants(self, first_nodes, second_nodes, replicas):
        """After any membership change: every vBucket has an active, no
        chain repeats a node, active load is balanced within 1."""
        before = plan_map(first_nodes, num_vbuckets=32, num_replicas=replicas)
        after = plan_map(second_nodes, num_vbuckets=32, num_replicas=replicas,
                         previous=before)
        counts = {n: 0 for n in second_nodes}
        for chain in after.chains:
            assert chain[0] is not None
            assert chain[0] in second_nodes
            assigned = [n for n in chain if n is not None]
            assert len(assigned) == len(set(assigned))
            counts[chain[0]] += 1
        assert max(counts.values()) - min(counts.values()) <= 1


class TestMapQueries:
    def test_key_routing(self):
        cluster_map = plan_map(["n1", "n2"], num_vbuckets=32)
        key = "user::42"
        vb = cluster_map.vbucket_for_key(key)
        assert cluster_map.node_for_key(key) == cluster_map.active_node(vb)

    def test_vbuckets_of_node(self):
        cluster_map = plan_map(["n1", "n2"], num_vbuckets=8, num_replicas=1)
        actives = cluster_map.active_vbuckets_of("n1")
        replicas = cluster_map.replica_vbuckets_of("n1")
        assert len(actives) == 4
        assert len(replicas) == 4
        assert not set(actives) & set(replicas)

    def test_copy_is_independent(self):
        original = plan_map(["n1"], num_vbuckets=4, num_replicas=0)
        copy = original.copy()
        copy.chains[0][0] = "other"
        assert original.chains[0][0] == "n1"
