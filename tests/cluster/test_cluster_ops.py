"""Integration tests for the clustered system: smart-client routing,
replication, durability, failover, orchestrator election, and rebalance."""

import pytest

from repro import Cluster
from repro.common.errors import (
    BucketExistsError,
    BucketNotFoundError,
    DurabilityImpossibleError,
    NoQuorumError,
)
from repro.common.services import Service
from repro.kv.engine import VBucketState


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=3, vbuckets=16)
    cluster.create_bucket("b", replicas=1)
    return cluster


@pytest.fixture
def client(cluster):
    return cluster.connect()


def doc_count_on(cluster, node_name, bucket="b", state=VBucketState.ACTIVE):
    engine = cluster.node(node_name).engine(bucket)
    total = 0
    for vb_id in engine.owned_vbuckets(state):
        total += sum(
            1 for _k, e in engine.vbuckets[vb_id].hashtable.items()
            if not e.doc.meta.deleted
        )
    return total


class TestSmartClientRouting:
    def test_write_read_roundtrip(self, cluster, client):
        for i in range(50):
            client.upsert("b", f"user::{i}", {"i": i})
        for i in range(50):
            assert client.get("b", f"user::{i}").value == {"i": i}

    def test_keys_spread_across_nodes(self, cluster, client):
        for i in range(100):
            client.upsert("b", f"user::{i}", {"i": i})
        counts = [doc_count_on(cluster, f"node{n}") for n in (1, 2, 3)]
        assert sum(counts) == 100
        assert all(count > 0 for count in counts)

    def test_get_touches_single_node(self, cluster, client):
        client.upsert("b", "k1", {})
        cluster.network.reset_counters()
        client.get("b", "k1")
        gets = [(dst, m) for (dst, m), n in cluster.network.calls.items()
                if m == "kv_get"]
        assert len(gets) == 1

    def test_unknown_bucket(self, client):
        with pytest.raises(BucketNotFoundError):
            client.get("nope", "k")

    def test_duplicate_bucket_rejected(self, cluster):
        with pytest.raises(BucketExistsError):
            cluster.create_bucket("b")

    def test_multi_get(self, cluster, client):
        client.upsert("b", "a", 1)
        client.upsert("b", "c", 3)
        found = client.multi_get("b", ["a", "missing", "c"])
        assert set(found) == {"a", "c"}


class TestReplication:
    def test_mutations_reach_replicas(self, cluster, client):
        for i in range(30):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        replica_docs = sum(
            doc_count_on(cluster, f"node{n}", state=VBucketState.REPLICA)
            for n in (1, 2, 3)
        )
        assert replica_docs == 30  # replicas=1

    def test_deletes_replicate(self, cluster, client):
        client.upsert("b", "k", 1)
        cluster.run_until_idle()
        client.remove("b", "k")
        cluster.run_until_idle()
        replica_docs = sum(
            doc_count_on(cluster, f"node{n}", state=VBucketState.REPLICA)
            for n in (1, 2, 3)
        )
        assert replica_docs == 0

    def test_replica_matches_active_value(self, cluster, client):
        result = client.upsert("b", "key-x", {"v": "final"})
        cluster.run_until_idle()
        vb = cluster.manager.cluster_maps["b"].vbucket_for_key("key-x")
        replica_node = cluster.manager.cluster_maps["b"].replica_nodes(vb)[0]
        entry = (
            cluster.node(replica_node).engine("b").vbuckets[vb].hashtable.peek("key-x")
        )
        assert entry.doc.value == {"v": "final"}
        assert entry.doc.meta.cas == result.cas


class TestDurability:
    def test_replicate_to_one(self, cluster, client):
        result = client.upsert("b", "k", {"v": 1}, replicate_to=1)
        vb = result.vbucket_id
        replica_node = cluster.manager.cluster_maps["b"].replica_nodes(vb)[0]
        entry = cluster.node(replica_node).engine("b").vbuckets[vb].hashtable.peek("k")
        assert entry is not None

    def test_persist_to_one(self, cluster, client):
        result = client.upsert("b", "k", {"v": 1}, persist_to=1)
        vb = result.vbucket_id
        active = cluster.manager.cluster_maps["b"].active_node(vb)
        assert cluster.node(active).engine("b").vbuckets[vb].store.contains("k")

    def test_persist_and_replicate(self, cluster, client):
        client.upsert("b", "k", {"v": 1}, replicate_to=1, persist_to=2)

    def test_impossible_requirement(self, cluster, client):
        with pytest.raises(DurabilityImpossibleError):
            client.upsert("b", "k", 1, replicate_to=3)


class TestFailover:
    def test_manual_failover_promotes_replicas(self, cluster, client):
        for i in range(40):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        report = cluster.failover("node2")
        assert report["b"]["promoted"] > 0
        assert report["b"]["lost"] == 0
        for i in range(40):
            assert client.get("b", f"k{i}").value == {"i": i}

    def test_crash_then_auto_failover(self, cluster, client):
        for i in range(40):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster.crash_node("node3")
        cluster.tick(31.0)  # past AUTO_FAILOVER_TIMEOUT
        assert "node3" in cluster.manager.ejected
        for i in range(40):
            assert client.get("b", f"k{i}").value == {"i": i}

    def test_no_failover_before_timeout(self, cluster, client):
        client.upsert("b", "k", 1)
        cluster.run_until_idle()
        cluster.crash_node("node3")
        cluster.tick(5.0)
        assert "node3" not in cluster.manager.ejected

    def test_recovery_cancels_suspicion(self, cluster, client):
        cluster.crash_node("node3")
        cluster.tick(5.0)
        cluster.recover_node("node3")
        cluster.tick(60.0)
        assert "node3" not in cluster.manager.ejected

    def test_failover_without_replicas_loses_data(self):
        cluster = Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("nb", replicas=0)
        client = cluster.connect()
        for i in range(20):
            client.upsert("nb", f"k{i}", i)
        report = cluster.failover("node2")
        assert report["nb"]["lost"] > 0

    def test_reads_after_failover_are_served_by_promoted_node(self, cluster, client):
        client.upsert("b", "kx", {"v": 1})
        cluster.run_until_idle()
        vb = cluster.manager.cluster_maps["b"].vbucket_for_key("kx")
        active_before = cluster.manager.cluster_maps["b"].active_node(vb)
        cluster.crash_node(active_before)
        cluster.tick(31.0)
        active_after = cluster.manager.cluster_maps["b"].active_node(vb)
        assert active_after != active_before
        assert client.get("b", "kx").value == {"v": 1}

    def test_writes_continue_after_failover(self, cluster, client):
        client.upsert("b", "k", 1)
        cluster.run_until_idle()
        cluster.crash_node("node1")
        cluster.tick(31.0)
        client.upsert("b", "k", 2)
        assert client.get("b", "k").value == 2


class TestOrchestrator:
    def test_lowest_live_node_is_orchestrator(self, cluster):
        assert cluster.manager.orchestrator == "node1"

    def test_reelection_on_orchestrator_death(self, cluster):
        cluster.crash_node("node1")
        assert cluster.manager.orchestrator == "node2"

    def test_no_quorum(self, cluster):
        for n in ("node1", "node2", "node3"):
            cluster.crash_node(n)
        with pytest.raises(NoQuorumError):
            _ = cluster.manager.orchestrator


class TestRebalance:
    def test_rebalance_after_add_node(self, cluster, client):
        for i in range(60):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster.add_node("node4")
        report = cluster.rebalance()
        assert report["b"]["moves"] > 0
        assert doc_count_on(cluster, "node4") > 0
        for i in range(60):
            assert client.get("b", f"k{i}").value == {"i": i}

    def test_rebalance_balances_actives(self, cluster, client):
        cluster.add_node("node4")
        cluster.rebalance()
        stats = cluster.manager.cluster_maps["b"].stats()
        counts = stats["active_per_node"].values()
        assert max(counts) - min(counts) <= 1

    def test_rebalance_rebuilds_replicas(self, cluster, client):
        for i in range(30):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster.add_node("node4")
        cluster.rebalance()
        replica_docs = sum(
            doc_count_on(cluster, f"node{n}", state=VBucketState.REPLICA)
            for n in (1, 2, 3, 4)
        )
        assert replica_docs == 30

    def test_remove_node_gracefully(self, cluster, client):
        for i in range(40):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster.remove_node("node3")
        assert "node3" not in cluster.manager.nodes
        for i in range(40):
            assert client.get("b", f"k{i}").value == {"i": i}

    def test_rebalance_after_failover_restores_redundancy(self, cluster, client):
        for i in range(30):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster.failover("node2")
        cluster.rebalance()
        stats = cluster.manager.cluster_maps["b"].stats()
        assert stats["unassigned_active"] == 0
        # With 2 survivors and replicas=1, every vBucket should again
        # have one replica.
        replica_total = sum(stats["replica_per_node"].values())
        assert replica_total == 16

    def test_client_with_stale_map_retries_through_rebalance(self, cluster):
        client_a = cluster.connect()
        for i in range(30):
            client_a.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster.add_node("node4")
        cluster.rebalance()
        # client_a still holds the old map; every read must still succeed
        # via NOT_MY_VBUCKET refresh.
        for i in range(30):
            assert client_a.get("b", f"k{i}").value == {"i": i}


class TestMds:
    def test_service_segregated_topology(self):
        cluster = Cluster(
            nodes=[
                ("data1", {"data"}),
                ("data2", {"data"}),
                ("index1", {"index"}),
                ("query1", {"query"}),
            ],
            vbuckets=16,
        )
        cluster.create_bucket("b")
        client = cluster.connect()
        client.upsert("b", "k", 1)
        # Data lands only on data nodes.
        assert "k" not in str(cluster.node("index1").engines)
        assert doc_count_on(cluster, "data1") + doc_count_on(cluster, "data2") == 1
        assert cluster.service_node(Service.INDEX).name == "index1"
        assert cluster.service_node(Service.QUERY).name == "query1"

    def test_bucket_requires_data_node(self):
        cluster = Cluster(nodes=[("q1", {"query"})], vbuckets=8)
        with pytest.raises(NoQuorumError):
            cluster.create_bucket("b")
