"""Partial batch outcomes under memory pressure: ``kv_multi_mutate``
keeps the BatchResult contract (every key in exactly one of ``results``
/ ``errors``) when some keys TMPFAIL mid-batch, with and without the
admission front door."""

import pytest

from repro import Cluster
from repro.common.errors import TemporaryFailureError

QUOTA = 32 * 1024
SMALL = "s" * 64
#: Can never fit under QUOTA: every attempt is a pressure-tagged
#: temporary failure, so these keys exhaust the batch retry ladder.
OVERSIZED = "z" * (64 * 1024)


def _mixed_batch():
    items = {f"ok{i}": SMALL for i in range(20)}
    items.update({f"big{i}": OVERSIZED for i in range(3)})
    return items


@pytest.fixture(params=[True, False], ids=["admission", "legacy"])
def cluster(request):
    cluster = Cluster(nodes=3, vbuckets=32, admission=request.param)
    cluster.create_bucket("b", replicas=1, quota_bytes=QUOTA,
                          expiry_pager_interval=None)
    return cluster


def test_partial_batch_keeps_every_key_accounted(cluster):
    client = cluster.connect()
    items = _mixed_batch()
    batch = client.multi_upsert("b", items)

    assert set(batch.results) | set(batch.errors) == set(items)
    assert not set(batch.results) & set(batch.errors)
    # The doomed keys failed with (a subclass of) the temporary-failure
    # taxonomy; the viable keys all landed despite sharing RPCs with
    # them.
    assert set(batch.errors) == {f"big{i}" for i in range(3)}
    for error in batch.errors.values():
        assert isinstance(error, TemporaryFailureError)
    # Succeeded mutations are real and durable: visible to point reads
    # once the writeback machinery quiesces and the breaker (tripped by
    # the doomed keys) walks its cooldown on the virtual clock.
    cluster.tick(2.0)
    for key in batch.results:
        assert client.get("b", key).value == SMALL


def test_errored_keys_are_retryable_not_poisoned(cluster):
    client = cluster.connect()
    batch = client.multi_upsert("b", _mixed_batch())
    assert batch.errors
    cluster.tick(5.0)  # pressure decays, breakers close, flusher drains
    retry = client.multi_upsert("b", {key: SMALL for key in batch.errors})
    assert retry.ok
    for key in retry.results:
        assert client.get("b", key).value == SMALL


def test_batch_require_ok_surfaces_first_tmpfail(cluster):
    client = cluster.connect()
    batch = client.multi_upsert("b", _mixed_batch())
    with pytest.raises(TemporaryFailureError):
        batch.require_ok()
