"""The node-grouped batch KV path: multi_get / multi_upsert /
multi_remove issue one RPC per destination node, survive topology
changes by re-batching only the failed keys, and surface per-key errors
in a structured BatchResult."""

import pytest

from repro import BatchResult, Cluster
from repro.common.errors import KeyExistsError, KeyNotFoundError


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=4, vbuckets=64)
    cluster.create_bucket("b", replicas=1)
    return cluster


@pytest.fixture
def client(cluster):
    return cluster.connect()


def batch_calls(cluster, method):
    """(node, count) pairs for one batch RPC method."""
    return {
        dst: n for (dst, m), n in cluster.network.calls.items() if m == method
    }


class TestNodeGrouping:
    def test_multi_get_one_rpc_per_involved_node(self, cluster, client):
        keys = [f"user::{i}" for i in range(60)]
        client.multi_upsert("b", {k: {"i": i} for i, k in enumerate(keys)})
        cluster_map = cluster.manager.cluster_maps["b"]
        involved = {cluster_map.node_for_key(k) for k in keys}
        assert len(involved) == 4  # 60 keys spread over all 4 nodes

        cluster.network.reset_counters()
        found = client.multi_get("b", keys)
        assert len(found) == 60
        calls = batch_calls(cluster, "kv_multi_get")
        assert set(calls) == involved
        assert all(count == 1 for count in calls.values())
        # And no per-key gets at all.
        assert not any(m == "kv_get" for _dst, m in cluster.network.calls)

    def test_multi_upsert_one_rpc_per_involved_node(self, cluster, client):
        keys = [f"k{i}" for i in range(40)]
        cluster.network.reset_counters()
        result = client.multi_upsert("b", [(k, {"v": k}) for k in keys])
        assert result.ok and len(result) == 40
        calls = batch_calls(cluster, "kv_multi_mutate")
        assert sum(calls.values()) == len(calls) <= 4
        for key in keys:
            assert client.get("b", key).value == {"v": key}

    def test_batched_charges_less_latency_than_per_key(self):
        cluster = Cluster(nodes=4, vbuckets=64, network_latency=0.001)
        cluster.create_bucket("b")
        client = cluster.connect()
        keys = [f"k{i}" for i in range(50)]
        client.multi_upsert("b", {k: 1 for k in keys})

        cluster.network.reset_counters()
        client.multi_get("b", keys, batched=False)
        per_key = cluster.network.latency_charged

        cluster.network.reset_counters()
        client.multi_get("b", keys)
        batched = cluster.network.latency_charged
        assert batched < per_key
        assert batched == pytest.approx(0.001 * 4)  # one unit per node

    def test_deduplicates_keys(self, cluster, client):
        client.upsert("b", "dup", {"v": 1})
        cluster.network.reset_counters()
        found = client.multi_get("b", ["dup", "dup", "dup"])
        assert set(found) == {"dup"}
        assert sum(batch_calls(cluster, "kv_multi_get").values()) == 1


class TestPartialFailure:
    def test_missing_keys_omitted(self, cluster, client):
        client.upsert("b", "a", 1)
        client.upsert("b", "c", 3)
        found = client.multi_get("b", ["a", "missing", "c"])
        assert set(found) == {"a", "c"}

    def test_batch_result_surfaces_per_key_errors(self, cluster, client):
        client.upsert("b", "present", {"v": 1})
        batch = client.multi_get_batch("b", ["present", "absent"])
        assert isinstance(batch, BatchResult)
        assert not batch.ok
        assert batch["present"].value == {"v": 1}
        assert isinstance(batch.errors["absent"], KeyNotFoundError)
        with pytest.raises(KeyNotFoundError):
            batch.require_ok()

    def test_multi_remove_partial(self, cluster, client):
        client.multi_upsert("b", {"x": 1, "y": 2})
        result = client.multi_remove("b", ["x", "ghost", "y"])
        assert set(result.results) == {"x", "y"}
        assert isinstance(result.errors["ghost"], KeyNotFoundError)
        assert client.multi_get("b", ["x", "y"]) == {}

    def test_one_bad_key_does_not_mask_the_rest(self, cluster, client):
        client.upsert("b", "taken", {"v": 0})
        # Batch mutations through the engine surface KeyExistsError per
        # key; route an insert batch directly at the owning node.
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("taken")
        node = cluster_map.active_node(vb)
        vb2 = cluster_map.vbucket_for_key("fresh::for-node-test")
        outcomes = cluster.network.call(
            "test", node, "kv_multi_mutate", "b",
            [("insert", vb, "taken", {"value": {"v": 1}})],
        )
        assert outcomes[0][0] == "err"
        assert isinstance(outcomes[0][1], KeyExistsError)
        assert vb2 >= 0  # vbucket hashing stays in range


class TestTopologyChanges:
    def test_rebatch_after_rebalance(self, cluster, client):
        keys = [f"user::{i}" for i in range(40)]
        client.multi_upsert("b", {k: {"i": i} for i, k in enumerate(keys)})
        # Client cached the 4-node map; shrink the cluster under it.
        cluster.remove_node("node4")
        found = client.multi_get("b", keys)
        assert len(found) == 40

    def test_rebatch_after_failover(self, cluster, client):
        keys = [f"user::{i}" for i in range(40)]
        client.multi_upsert("b", {k: {"i": i} for i, k in enumerate(keys)})
        cluster.run_until_idle()
        cluster.crash_node("node2")
        cluster.failover("node2")
        found = client.multi_get("b", keys)
        assert len(found) == 40

    def test_stale_map_only_failed_keys_rebatched(self, cluster, client):
        keys = [f"user::{i}" for i in range(40)]
        client.multi_upsert("b", {k: {"i": i} for i, k in enumerate(keys)})
        stale_map = client._map("b")
        cluster.remove_node("node3")
        fresh_map = cluster.manager.cluster_maps["b"]
        moved = [k for k in keys
                 if stale_map.node_for_key(k) != fresh_map.node_for_key(k)]
        assert moved  # the shrink moved some of our keys
        client._maps["b"] = stale_map
        cluster.network.reset_counters()
        found = client.multi_get("b", keys)
        assert len(found) == 40
        # Round 1: one RPC to each of the 4 stale destinations (one of
        # which is gone / not the owner any more); the retry round only
        # carries the moved keys, so total batch RPCs stay well under
        # "one per key".
        total_batches = sum(batch_calls(cluster, "kv_multi_get").values())
        assert total_batches < len(keys)


class TestConsumers:
    def test_ycsb_load_uses_batch_path(self, cluster):
        from repro.ycsb import CoreWorkload, YcsbClient, workload_a
        workload = CoreWorkload(workload_a(record_count=50), seed=7)
        ycsb = YcsbClient(cluster, "b", workload)
        cluster.network.reset_counters()
        count = ycsb.load()
        assert count == 50
        assert sum(batch_calls(cluster, "kv_multi_mutate").values()) >= 1
        assert not any(m == "kv_upsert" for _dst, m in cluster.network.calls)

    def test_n1ql_fetch_uses_batch_path(self, cluster, client):
        for i in range(30):
            client.upsert("b", f"user::{i:03d}", {"i": i, "city": f"c{i % 3}"})
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        cluster.run_until_idle()
        cluster.network.reset_counters()
        rows = cluster.query("SELECT b.city FROM b WHERE b.i >= 0").rows
        assert len(rows) == 30
        assert sum(batch_calls(cluster, "kv_multi_get").values()) >= 1
        assert not any(m == "kv_get" for _dst, m in cluster.network.calls)
