"""Observability surfaces (stats, event logs, metrics) plus a seeded
randomized soak test that interleaves KV traffic, N1QL queries, and
topology changes while checking invariants."""

import random

import pytest

from repro import Cluster
from repro.common.errors import KeyNotFoundError, NodeDownError


class TestObservability:
    @pytest.fixture
    def cluster(self):
        cluster = Cluster(nodes=2, vbuckets=16)
        cluster.create_bucket("b")
        return cluster

    def test_cluster_stats_shape(self, cluster):
        stats = cluster.stats()
        assert stats["nodes"] == ["node1", "node2"]
        assert stats["orchestrator"] == "node1"
        assert "b" in stats["buckets"]
        assert stats["buckets"]["b"]["revision"] >= 1

    def test_node_stats(self, cluster):
        client = cluster.connect()
        client.upsert("b", "k", 1)
        stats = cluster.node("node1").stats()
        assert stats["name"] == "node1"
        assert set(stats["services"]) == {"data", "index", "query"}
        assert "b" in stats["buckets"]

    def test_event_log_records_lifecycle(self, cluster):
        cluster.crash_node("node2")
        cluster.tick(31.0)
        events = [event for _t, event, _d in cluster.manager.event_log]
        assert "node-added" in events
        assert "bucket-created" in events
        assert "node-suspect" in events
        assert "failover" in events

    def test_recovery_event(self, cluster):
        cluster.crash_node("node2")
        cluster.tick(5.0)
        cluster.recover_node("node2")
        events = [event for _t, event, _d in cluster.manager.event_log]
        assert "node-recovered" in events

    def test_network_call_accounting(self, cluster):
        client = cluster.connect()
        cluster.network.reset_counters()
        client.upsert("b", "k", 1)
        upserts = sum(
            count for (dst, method), count in cluster.network.calls.items()
            if method == "kv_upsert"
        )
        assert upserts == 1

    def test_engine_metrics(self, cluster):
        client = cluster.connect()
        client.upsert("b", "k", 1)
        client.get("b", "k")
        try:
            client.get("b", "missing")
        except KeyNotFoundError:
            pass
        cluster.run_until_idle()
        totals = {}
        for name in ("node1", "node2"):
            for counter, value in cluster.node(name).metrics.snapshot()[
                "counters"
            ].items():
                totals[counter] = totals.get(counter, 0) + value
        assert totals.get("kv.mutations", 0) >= 1
        assert totals.get("kv.gets", 0) >= 1
        assert totals.get("kv.get_misses", 0) >= 1
        assert totals.get("kv.flushed", 0) >= 1

    def test_query_metrics(self, cluster):
        cluster.query("SELECT 1")
        requests = sum(
            cluster.node(n).metrics.counter_value("n1ql.requests")
            for n in ("node1", "node2")
        )
        assert requests == 1

    def test_rebalance_in_progress_guard(self, cluster):
        from repro.common.errors import RebalanceInProgressError
        cluster.rebalancer.in_progress = True
        with pytest.raises(RebalanceInProgressError):
            cluster.rebalancer.rebalance()
        cluster.rebalancer.in_progress = False

    def test_client_retries_exhaust_to_error(self, cluster):
        client = cluster.connect()
        client.upsert("b", "k", 1)
        cluster.manager.auto_failover = False
        cluster.network.set_down("node1")
        cluster.network.set_down("node2")
        with pytest.raises(NodeDownError):
            client.get("b", "k")


class TestSoak:
    """A deterministic random workload across every subsystem at once.
    The invariant: a Python dict shadow-model and the cluster agree on
    every key's value at every checkpoint, through writes, deletes,
    rebalance, failover, and index maintenance."""

    SEED = 20160626  # SIGMOD'16 started June 26, 2016

    def test_soak(self):
        rng = random.Random(self.SEED)
        cluster = Cluster(nodes=3, vbuckets=16)
        cluster.create_bucket("b", replicas=1)
        client = cluster.connect()
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        cluster.query("CREATE INDEX by_group ON b(grp) USING GSI")
        model: dict[str, dict] = {}
        next_node = 4

        def checkpoint():
            cluster.run_until_idle()
            # Spot-check a sample of keys against the model.
            sample = rng.sample(sorted(model), min(len(model), 15))
            for key in sample:
                assert client.get("b", key).value == model[key]
            # Deleted keys stay deleted.
            # COUNT(*) through N1QL must match the model exactly.
            rows = cluster.query(
                "SELECT COUNT(*) AS n FROM b x",
                scan_consistency="request_plus").rows
            assert rows[0]["n"] == len(model)
            # Per-group counts through the secondary index match too.
            rows = cluster.query(
                "SELECT x.grp, COUNT(*) AS n FROM b x GROUP BY x.grp",
                scan_consistency="request_plus").rows
            from collections import Counter
            expected = Counter(doc["grp"] for doc in model.values())
            assert {(r["grp"], r["n"]) for r in rows} == set(expected.items())

        for step in range(300):
            action = rng.random()
            if action < 0.55:  # write
                key = f"k{rng.randrange(80):03d}"
                doc = {"grp": rng.randrange(5), "step": step}
                client.upsert("b", key, doc)
                model[key] = doc
            elif action < 0.70:  # delete
                if model:
                    key = rng.choice(sorted(model))
                    client.remove("b", key)
                    del model[key]
            elif action < 0.80:  # N1QL update
                grp = rng.randrange(5)
                result = cluster.query(
                    "UPDATE b x SET x.touched = $1 WHERE x.grp = $2",
                    params=[step, grp],
                    scan_consistency="request_plus")
                for key, doc in model.items():
                    if doc["grp"] == grp:
                        doc["touched"] = step
                assert result.mutation_count == sum(
                    1 for d in model.values() if d["grp"] == grp
                )
            elif action < 0.90:  # settle + checkpoint
                checkpoint()
            else:  # topology event
                event = rng.random()
                if event < 0.4 and len(cluster.manager.data_nodes()) < 5:
                    cluster.add_node(f"node{next_node}")
                    next_node += 1
                    cluster.rebalance()
                elif event < 0.7 and len(cluster.manager.data_nodes()) > 2:
                    # Let replication catch up first: failing over with
                    # un-replicated writes in flight loses them -- that is
                    # the asynchronous-replication trade-off of section
                    # 2.3.2, exercised separately in
                    # TestAsyncReplicationLoss below.
                    cluster.run_until_idle()
                    victim = rng.choice(cluster.manager.data_nodes()[1:])
                    cluster.failover(victim)
                    cluster.rebalance()
                else:
                    cluster.rebalance()
                checkpoint()
        checkpoint()


class TestAsyncReplicationLoss:
    def test_failover_before_replication_can_lose_memory_only_writes(self):
        """The flip side of memory-first acknowledgement (section 2.3.2):
        a write acked from memory and failed over before the replicator
        ran is gone -- unless the client asked for replicate_to."""
        cluster = Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("b", replicas=1)
        client = cluster.connect()
        client.upsert("b", "seed", 0)
        cluster.run_until_idle()

        # Write 50 keys but do NOT let the replication pumps run.
        for i in range(50):
            client.upsert("b", f"racy{i}", {"i": i})
        cluster.failover("node2")  # promotes stale replicas

        lost = 0
        for i in range(50):
            try:
                client.get("b", f"racy{i}")
            except KeyNotFoundError:
                lost += 1
        # Keys whose active was node2 are lost; keys on node1 survive.
        assert lost > 0
        # With replicate_to=1 the same race cannot lose anything.
        cluster2 = Cluster(nodes=2, vbuckets=8)
        cluster2.create_bucket("b", replicas=1)
        client2 = cluster2.connect()
        for i in range(20):
            client2.upsert("b", f"safe{i}", {"i": i}, replicate_to=1)
        cluster2.failover("node2")
        for i in range(20):
            assert client2.get("b", f"safe{i}").value == {"i": i}
