"""Node restart and warmup: a crashed process loses its memory but not
its (synced) disk; restart rebuilds the cache, views, and GSI instances
from persistent state."""

import pytest

from repro import Cluster
from repro.common.errors import KeyNotFoundError
from repro.views import ViewDefinition


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=2, vbuckets=8)
    cluster.create_bucket("b", replicas=0)  # no replicas: disk is the net
    return cluster


@pytest.fixture
def client(cluster):
    return cluster.connect()


class TestWarmup:
    def test_persisted_data_survives_restart(self, cluster, client):
        for i in range(40):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()  # flusher persists everything
        cluster.crash_node("node1")
        cluster.node("node1").disk.crash()  # drop unsynced bytes
        cluster.restart_node("node1")
        for i in range(40):
            assert client.get("b", f"k{i}").value == {"i": i}

    def test_unpersisted_writes_lost_on_restart(self, cluster, client):
        client.upsert("b", "durable", 1)
        cluster.run_until_idle()
        # Write without letting the flusher run, then crash.
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("volatile")
        node_name = cluster_map.active_node(vb)
        engine = cluster.node(node_name).engines["b"]
        engine.upsert(vb, "volatile", 2)
        cluster.node(node_name).disk.crash()
        cluster.restart_node(node_name)
        assert client.get("b", "durable").value == 1
        with pytest.raises(KeyNotFoundError):
            client.get("b", "volatile")

    def test_warmup_restores_metadata(self, cluster, client):
        result = client.upsert("b", "k", {"v": 1})
        cluster.run_until_idle()
        cluster.restart_node("node1")
        cluster.restart_node("node2")
        doc = client.get("b", "k")
        assert doc.meta.cas == result.cas
        assert doc.meta.rev == 1

    def test_cas_continues_monotonically_after_restart(self, cluster, client):
        first = client.upsert("b", "k", 1)
        cluster.run_until_idle()
        cluster_map = cluster.manager.cluster_maps["b"]
        node_name = cluster_map.active_node(first.vbucket_id)
        cluster.restart_node(node_name)
        second = client.upsert("b", "k", 2)
        assert second.cas > first.cas

    def test_writes_resume_after_restart(self, cluster, client):
        client.upsert("b", "pre", 1)
        cluster.run_until_idle()
        cluster.restart_node("node1")
        client.upsert("b", "post", 2)
        cluster.run_until_idle()
        assert client.get("b", "post").value == 2

    def test_tombstones_survive_restart(self, cluster, client):
        client.upsert("b", "gone", 1)
        cluster.run_until_idle()
        client.remove("b", "gone")
        cluster.run_until_idle()
        cluster.restart_node("node1")
        cluster.restart_node("node2")
        with pytest.raises(KeyNotFoundError):
            client.get("b", "gone")


class TestServiceRebuildOnRestart:
    def test_views_rematerialize(self, cluster, client):
        def by_i(doc, meta, emit):
            if "i" in doc:
                emit(doc["i"], None)

        cluster.define_view("b", ViewDefinition("dd", "by_i", by_i, "_count"))
        for i in range(20):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster.restart_node("node1")
        result = cluster.views.query("b", "dd", "by_i", stale="false")
        assert result.value == 20

    def test_gsi_rebuilt_on_restart(self, cluster, client):
        for i in range(20):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster.query("CREATE INDEX by_i ON b(i) USING GSI")
        meta = cluster.manager.index_registry.require("by_i")
        index_host = meta.nodes[0]
        cluster.restart_node(index_host)
        rows = cluster.gsi.scan("by_i", scan_consistency="request_plus")
        assert len(rows) == 20

    def test_gsi_stays_fresh_after_restart(self, cluster, client):
        cluster.query("CREATE INDEX by_i ON b(i) USING GSI")
        client.upsert("b", "a", {"i": 1})
        cluster.run_until_idle()
        cluster.restart_node("node1")
        cluster.restart_node("node2")
        client.upsert("b", "b2", {"i": 2})
        rows = cluster.gsi.scan("by_i", scan_consistency="request_plus")
        assert len(rows) == 2

    def test_replica_rebuilt_after_restart(self):
        cluster = Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("r", replicas=1)
        client = cluster.connect()
        for i in range(20):
            client.upsert("r", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster.crash_node("node2")
        cluster.node("node2").disk.crash()
        cluster.restart_node("node2")
        cluster.run_until_idle()
        # node2's replica copies are repopulated by the replicator.
        from repro.kv.engine import VBucketState
        engine = cluster.node("node2").engines["r"]
        replica_docs = sum(
            sum(1 for _k, e in engine.vbuckets[vb].hashtable.items()
                if not e.doc.meta.deleted)
            for vb in engine.owned_vbuckets(VBucketState.REPLICA)
        )
        active_docs = sum(
            sum(1 for _k, e in engine.vbuckets[vb].hashtable.items()
                if not e.doc.meta.deleted)
            for vb in engine.owned_vbuckets(VBucketState.ACTIVE)
        )
        # Every document lives on node2 exactly once (active or replica
        # copy), and the cluster serves all of them.
        assert replica_docs + active_docs == 20
        total_everywhere = sum(
            1 for i in range(20) if client.get("r", f"k{i}").value == {"i": i}
        )
        assert total_everywhere == 20
