"""Regressions for the true positives repro-bounds found in its first
whole-tree run.  Each test pins the *fix* (a real bound or lifecycle,
never a suppression):

* ``ClusterManager.event_log`` -- fed from the failure-detector pump,
  it grew forever; now capped at ``EVENT_LOG_LIMIT``.
* ``AdmissionController._clients`` / ``_tenants`` -- every connect
  registered a fresh unique handle name and lazily built it a token
  bucket, and nothing ever removed either; now ``SmartClient.close()``
  releases both.
* ``AdmissionController._pressure`` -- decayed-to-nothing overload
  scores lingered per node forever; now pruned at ``PRESSURE_FLOOR``.
"""

import pytest

from repro import Cluster
from repro.admission import AdmissionConfig, AdmissionController
from repro.common.clock import VirtualClock
from repro.common.scheduler import Scheduler


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=2, vbuckets=16)
    cluster.create_bucket("b")
    return cluster


@pytest.fixture
def controller():
    return AdmissionController(Scheduler(VirtualClock()),
                               config=AdmissionConfig())


class TestEventLogBounded:
    def test_event_log_caps_at_limit(self, cluster):
        manager = cluster.manager
        limit = manager.EVENT_LOG_LIMIT
        for i in range(limit + 100):
            manager._log("node-suspect", f"synthetic-{i}")
        assert len(manager.event_log) == limit
        # Trimming drops the oldest entries, keeping the recent tail.
        assert manager.event_log[-1][2] == f"synthetic-{limit + 99}"
        assert not any(
            detail == "synthetic-0" for _t, _e, detail in manager.event_log
        )

    def test_lifecycle_events_survive_under_the_cap(self, cluster):
        events = [event for _t, event, _d in cluster.manager.event_log]
        assert "node-added" in events
        assert "bucket-created" in events


class TestClientLifecycleReleasesAdmissionState:
    def test_close_releases_registration_and_tenant_bucket(self, cluster):
        controller = cluster.admission
        baseline_clients = len(controller._clients)
        baseline_tenants = len(controller._tenants)
        handles = [cluster.connect() for _ in range(8)]
        for handle in handles:
            handle.upsert("b", f"k-{handle.name}", 1)
        assert len(controller._clients) == baseline_clients + 8
        for handle in handles:
            handle.close()
        assert len(controller._clients) == baseline_clients
        assert len(controller._tenants) == baseline_tenants

    def test_connect_close_churn_does_not_accumulate(self, cluster):
        controller = cluster.admission
        # The query service keeps its own long-lived internal handles;
        # churned application handles must not add to them.
        baseline_clients = len(controller._clients)
        baseline_tenants = len(controller._tenants)
        for i in range(50):
            handle = cluster.connect()
            handle.upsert("b", f"churn-{i}", i)
            handle.close()
        assert len(controller._clients) == baseline_clients
        assert len(controller._tenants) == baseline_tenants

    def test_close_is_idempotent(self, cluster):
        handle = cluster.connect()
        handle.close()
        handle.close()


class TestPressureEntriesPruned:
    def test_fully_decayed_scores_are_dropped(self, controller):
        controller.note_overload("node1")
        controller.note_overload("node2")
        assert len(controller._pressure) == 2
        # Many half-lives later the scores are indistinguishable from
        # "never overloaded" and must not linger.
        controller.clock.advance(
            controller.config.pressure_half_life * 64)
        assert controller.pressure_score() == 0.0
        assert controller._pressure == {}

    def test_live_scores_survive_pruning(self, controller):
        controller.note_overload("node1")
        controller.clock.advance(controller.config.pressure_half_life)
        assert controller.pressure_score() == pytest.approx(0.5)
        assert "node1" in controller._pressure
