"""Regression tests for the defects repro-flow's first whole-tree run
surfaced (option plumbing and swallowed-exception findings).

Each test pins the *fixed* behaviour:

* at_plus consistency was silently degraded to ``stale=ok`` on the
  view-backed index scan path (option-domain finding in
  ``n1ql/operators.py``);
* ``scan_consistency`` was dropped on the operators -> GSI scan hop
  (option-dropped finding, plus the ``consistency`` -> a
  ``scan_consistency`` rename so the kwarg survives the hop);
* the view scatter loop swallowed ``NodeDownError`` and returned a
  silently incomplete result set;
* the projector's router swallowed ``NodeDownError`` and advanced its
  seqno watermark past key versions the indexer never received, so the
  index diverged from the bucket permanently.
"""

import pytest

from repro import Cluster
from repro.common.errors import NodeDownError
from repro.views import ViewDefinition


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=3, vbuckets=16)
    cluster.create_bucket("b", replicas=0)
    return cluster


def _direct_engine_upsert(cluster, bucket, key, value):
    """Write straight into the active engine so no scheduler rounds run
    before the query -- the index is guaranteed stale at query time."""
    cluster_map = cluster.manager.cluster_maps[bucket]
    vb = cluster_map.vbucket_for_key(key)
    node = cluster.node(cluster_map.active_node(vb))
    return node.engines[bucket].upsert(vb, key, value)


class TestAtPlusViewIndexScan:
    def test_at_plus_sees_own_write_through_view_index(self, cluster):
        """at_plus on a view-backed index must wait for the caller's own
        mutation; the pre-fix code degraded it to stale=ok and missed
        writes that had not been indexed yet."""
        cluster.query("CREATE INDEX by_v ON b(v) USING VIEW")
        cluster.run_until_idle()
        token = _direct_engine_upsert(cluster, "b", "mine", {"v": 999})
        stale = cluster.query("SELECT meta(x).id FROM b x WHERE x.v = 999").rows
        assert stale == []  # not_bounded legitimately misses it
        fresh = cluster.query(
            "SELECT meta(x).id AS id FROM b x WHERE x.v = 999",
            scan_consistency="at_plus",
            consistent_with=[token],
        ).rows
        assert [r["id"] for r in fresh] == ["mine"]


class TestGsiScanConsistencyPlumbing:
    def test_request_plus_reaches_the_index_scan(self, cluster):
        """The operators -> GsiCoordinator.scan hop must forward
        scan_consistency; the pre-fix code dropped it, so request_plus
        queries scanned not_bounded."""
        cluster.query("CREATE INDEX by_v ON b(v) USING GSI")
        cluster.run_until_idle()
        _direct_engine_upsert(cluster, "b", "fresh", {"v": 7})
        rows = cluster.query(
            "SELECT meta(x).id AS id FROM b x WHERE x.v = 7",
            scan_consistency="request_plus",
        ).rows
        assert [r["id"] for r in rows] == ["fresh"]

    def test_gsi_scan_accepts_scan_consistency_kwarg(self, cluster):
        """The public kwarg is named scan_consistency everywhere (the
        coordinator used to call it consistency, so the client-side name
        silently changed meaning across the hop)."""
        cluster.query("CREATE INDEX by_v ON b(v) USING GSI")
        cluster.run_until_idle()
        _direct_engine_upsert(cluster, "b", "fresh", {"v": 7})
        rows = cluster.gsi.scan("by_v", scan_consistency="request_plus")
        assert [doc_id for _entry, doc_id in rows] == ["fresh"]


class TestViewScatterNodeDown:
    def test_view_query_raises_instead_of_partial_result(self, cluster):
        """Every data node holds rows no other node serves; skipping a
        down node returned a silently incomplete result set pre-fix."""

        def map_fn(doc, meta, emit):
            if "v" in doc:
                emit(doc["v"], None)

        cluster.define_view("b", ViewDefinition("dd", "by_v", map_fn))
        client = cluster.connect()
        for i in range(20):
            client.upsert("b", f"k{i}", {"v": i})
        cluster.run_until_idle()
        assert len(client.view_query("b", "dd", "by_v").rows) == 20
        cluster.network.set_down("node2")
        with pytest.raises(NodeDownError):
            client.view_query("b", "dd", "by_v")


class TestProjectorRedelivery:
    def test_key_versions_survive_index_node_downtime(self):
        """Mutations projected while the index node is unreachable must
        be redelivered once it returns; the pre-fix router swallowed
        NodeDownError and the watermark advanced past the lost rows."""
        cluster = Cluster(
            nodes=[("d1", {"data"}), ("i1", {"index"}), ("q1", {"query"})],
            vbuckets=8,
        )
        cluster.create_bucket("b", replicas=0)
        client = cluster.connect()
        client.upsert("b", "before", {"v": 1})
        cluster.query("CREATE INDEX by_v ON b(v) USING GSI")
        cluster.run_until_idle()

        cluster.network.set_down("i1")
        client.upsert("b", "during", {"v": 2})
        # The projector pump runs, fails to deliver, and must NOT record
        # the mutation as projected.  (It also must not claim progress,
        # or this call would livelock.)
        cluster.run_until_idle()

        cluster.network.set_down("i1", False)
        cluster.run_until_idle()
        rows = cluster.gsi.scan("by_v", scan_consistency="request_plus")
        assert sorted(doc_id for _entry, doc_id in rows) == \
            ["before", "during"]
