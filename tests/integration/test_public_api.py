"""Public API surface tests: the documented entry points exist, every
public item carries a docstring, and bucket lifecycle works end to end."""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.common",
    "repro.kv",
    "repro.storage",
    "repro.dcp",
    "repro.cluster",
    "repro.replication",
    "repro.views",
    "repro.gsi",
    "repro.n1ql",
    "repro.client",
    "repro.xdcr",
    "repro.ycsb",
]


class TestSurface:
    def test_root_exports(self):
        assert repro.Cluster is not None
        assert repro.ReproError is not None
        assert repro.__version__

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_importable_with_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert getattr(module, symbol, None) is not None, (
                f"{name}.__all__ names missing symbol {symbol}"
            )

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_public_classes_and_functions_documented(self, name):
        module = importlib.import_module(name)
        undocumented = []
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(symbol)
        assert not undocumented, f"{name}: undocumented public items: {undocumented}"

    def test_cluster_public_methods_documented(self):
        from repro.server import Cluster
        from repro.client.smart_client import SmartClient
        for cls in (Cluster, SmartClient):
            for attr_name, attr in vars(cls).items():
                if attr_name.startswith("_") or not callable(attr):
                    continue
                assert inspect.getdoc(attr) or attr_name in ("nodes", "node"), (
                    f"{cls.__name__}.{attr_name} lacks a docstring"
                )


class TestBucketLifecycle:
    def test_create_use_drop(self):
        cluster = repro.Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("tmp", replicas=0)
        client = cluster.connect()
        client.upsert("tmp", "k", 1)
        cluster.drop_bucket("tmp")
        from repro.common.errors import BucketNotFoundError
        fresh = cluster.connect()
        with pytest.raises(BucketNotFoundError):
            fresh.get("tmp", "k")
        # The bucket name is reusable, and the new bucket starts empty.
        cluster.create_bucket("tmp", replicas=0)
        from repro.common.errors import KeyNotFoundError
        with pytest.raises(KeyNotFoundError):
            fresh.get("tmp", "k")

    def test_multiple_buckets_are_isolated(self):
        cluster = repro.Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("a", replicas=0)
        cluster.create_bucket("b", replicas=0)
        client = cluster.connect()
        client.upsert("a", "shared-key", {"bucket": "a"})
        client.upsert("b", "shared-key", {"bucket": "b"})
        assert client.get("a", "shared-key").value == {"bucket": "a"}
        assert client.get("b", "shared-key").value == {"bucket": "b"}

    def test_network_latency_accounting(self):
        cluster = repro.Cluster(nodes=2, vbuckets=8, network_latency=0.001)
        cluster.create_bucket("b", replicas=0)
        client = cluster.connect()
        before = cluster.network.latency_charged
        client.upsert("b", "k", 1)
        assert cluster.network.latency_charged > before
