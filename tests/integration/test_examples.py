"""Every example in examples/ must run cleanly end to end.

These are the repo's acceptance tests: each example exercises a
realistic multi-subsystem scenario and self-verifies with asserts."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert "OK" in result.stdout
