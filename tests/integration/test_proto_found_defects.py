"""Regressions for the true positives repro-proto found in its first
whole-tree run.  Each test pins the *fix* (a real state-machine repair,
never a suppression):

* ``KVEngine.set_vbucket_state`` / ``drop_vbucket`` -- reusing a DEAD
  vBucket id resurrected the dead copy's persisted documents (and its
  lineage), because ``VBucketStore`` deliberately recovers whatever the
  file holds.  DEAD->anything is not a declared VBucketState transition;
  reuse now means a brand-new copy on destroyed disk.
* ``CircuitBreaker.record_success`` -- a stale success reported while
  OPEN closed the breaker mid-cooldown.  OPEN->CLOSED is not a declared
  transition; only a HALF_OPEN probe outcome may close.
* ``DcpStream`` -- CLOSED is terminal: a closed stream must never hand
  out more messages, however many mutations arrive afterwards.
* ``XdcrReplication`` -- FAILED is a one-way door: a slot whose push
  failed is retired and replaced by a *fresh* stream from seqno 0, never
  resumed in place.
"""

import pytest

from repro import Cluster
from repro.admission.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.common.clock import VirtualClock
from repro.common.errors import KeyNotFoundError
from repro.common.scheduler import Scheduler
from repro.dcp.producer import DcpProducer, DcpStreamState
from repro.kv.engine import KVEngine
from repro.kv.types import VBucketState
from repro.xdcr import XdcrReplication, settle
from repro.xdcr.replicator import XdcrStreamState


class TestDeadVBucketNeverResurrects:
    """VBucketState declares no transition out of DEAD."""

    def test_reusing_a_dead_id_starts_from_empty_disk(self):
        engine = KVEngine("n1", "b")
        engine.create_vbucket(0, VBucketState.ACTIVE)
        engine.upsert(0, "k", {"v": 1})
        while engine.flush():
            pass
        old_uuid = engine.vbuckets[0].uuid
        assert engine.vbuckets[0].store.doc_count == 1

        engine.set_vbucket_state(0, VBucketState.DEAD)
        engine.set_vbucket_state(0, VBucketState.ACTIVE)

        vb = engine.vbuckets[0]
        assert vb.state is VBucketState.ACTIVE
        assert vb.store.doc_count == 0
        assert vb.store.update_seq == 0
        assert vb.high_seqno == 0
        # A fresh copy starts a fresh history branch, not the dead one's.
        assert vb.uuid != old_uuid
        with pytest.raises(KeyNotFoundError):
            engine.get(0, "k")

    def test_dropping_a_dead_copy_destroys_its_file(self):
        engine = KVEngine("n1", "b")
        engine.create_vbucket(3, VBucketState.ACTIVE)
        engine.upsert(3, "k", {"v": 1})
        while engine.flush():
            pass
        engine.set_vbucket_state(3, VBucketState.DEAD)
        engine.drop_vbucket(3)
        # The id comes back later (rebalance moving the vBucket back in):
        # recovery must find nothing.
        vb = engine.create_vbucket(3, VBucketState.REPLICA)
        assert vb.store.doc_count == 0
        assert vb.high_seqno == 0

    def test_rebalance_roundtrip_does_not_revive_deleted_docs(self):
        cluster = Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("b", replicas=0)
        client = cluster.connect()
        for i in range(20):
            client.upsert("b", f"k{i}", {"v": 1})
        cluster.run_until_idle()

        cluster.add_node("node3", services=("data",))
        cluster.rebalance()
        for i in range(10):
            client.remove("b", f"k{i}")
        cluster.run_until_idle()

        # Moving the vBuckets back recreates ids whose old (now DEAD and
        # dropped) copies persisted the deleted docs.
        cluster.remove_node("node3")
        cluster.run_until_idle()

        for i in range(10):
            with pytest.raises(KeyNotFoundError):
                client.get("b", f"k{i}")
        for i in range(10, 20):
            assert client.get("b", f"k{i}").value == {"v": 1}


class TestBreakerIgnoresStaleSuccessWhileOpen:
    """CircuitBreaker declares no OPEN->CLOSED transition."""

    def make_breaker(self):
        scheduler = Scheduler(VirtualClock())
        return CircuitBreaker("n1", scheduler, threshold=2, jitter=0.0)

    def test_success_while_open_does_not_close(self):
        breaker = self.make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        # A call that was in flight when the breaker tripped reports
        # back; it says nothing about recovery.
        breaker.record_success()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.remaining() > 0.0

    def test_only_a_half_open_probe_success_closes(self):
        breaker = self.make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.clock.advance(breaker.remaining() + 0.001)
        assert breaker.allow()  # clock-driven OPEN -> HALF_OPEN
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()


class TestClosedDcpStreamNeverResumes:
    """DcpStreamState declares no transition out of CLOSED."""

    def test_stream_end_is_terminal(self):
        engine = KVEngine("n1", "b")
        engine.create_vbucket(0, VBucketState.ACTIVE)
        for i in range(5):
            engine.upsert(0, f"k{i}", {"i": i})
        producer = DcpProducer(engine)
        stream = producer.stream_request(0, end_seqno=5)
        while not stream.closed:
            if not stream.take():
                break
        assert stream.closed
        assert stream.phase is DcpStreamState.CLOSED

        # New mutations after the end must not leak out of the corpse.
        for i in range(5, 10):
            engine.upsert(0, f"k{i}", {"i": i})
        assert stream.take() == []
        assert stream.phase is DcpStreamState.CLOSED

    def test_explicit_close_is_terminal(self):
        engine = KVEngine("n1", "b")
        engine.create_vbucket(0, VBucketState.ACTIVE)
        engine.upsert(0, "k", {"v": 1})
        producer = DcpProducer(engine)
        stream = producer.stream_request(0)
        stream.close()
        engine.upsert(0, "k2", {"v": 2})
        assert stream.take() == []
        assert stream.closed


class TestXdcrFailedSlotIsReplacedFresh:
    """XdcrStreamState: FAILED -> CLOSED only; delivery failure retires
    the slot and a brand-new stream replays from seqno 0."""

    def make_pair(self):
        east = Cluster(nodes=1, vbuckets=8)
        east.create_bucket("b", replicas=0)
        west = Cluster(nodes=1, vbuckets=8)
        west.create_bucket("b", replicas=0)
        return east, west

    def test_failed_slots_are_retired_not_resumed(self):
        east, west = self.make_pair()
        repl = XdcrReplication(east, west, "b")
        ce = east.connect()
        ce.upsert("b", "before", {"v": 1})
        settle(east, west)

        west.crash_node("node1")
        for i in range(5):
            ce.upsert("b", f"during{i}", {"i": i})
        settle(east, west)

        assert repl.metrics.counter_value("xdcr.stream_failed") >= 1
        # Every retired slot was closed; none lingers in FAILED.
        assert all(slot.state is XdcrStreamState.STREAMING
                   for slot in repl._streams.values())
        closed = repl.metrics.counter_value("xdcr.stream_closed")
        assert closed >= repl.metrics.counter_value("xdcr.stream_failed")

        west.restart_node("node1")
        settle(east, west)
        cw = west.connect()
        for i in range(5):
            assert cw.get("b", f"during{i}").value == {"i": i}
        assert cw.get("b", "before").value == {"v": 1}
        # The replacement streams were fresh opens, not resumptions.
        assert repl.metrics.counter_value("xdcr.stream_opened") > closed
