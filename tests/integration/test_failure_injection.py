"""Failure-injection tests: partitions, divergent replicas, durability
under failures, service loss, and crash-recovery of the whole node."""

import pytest

from repro import Cluster
from repro.common.errors import (
    DurabilityError,
    NodeDownError,
    ServiceUnavailableError,
)
from repro.kv.engine import VBucketState


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=3, vbuckets=16)
    cluster.create_bucket("b", replicas=1)
    return cluster


@pytest.fixture
def client(cluster):
    return cluster.connect()


class TestPartitions:
    def test_client_partitioned_from_one_node_still_reads_after_failover(
        self, cluster, client
    ):
        for i in range(30):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        # Partition node2 away from everything (clients and peers).
        cluster.crash_node("node2")
        cluster.tick(31.0)  # auto-failover
        for i in range(30):
            assert client.get("b", f"k{i}").value == {"i": i}

    def test_replication_stalls_through_partition_then_catches_up(
        self, cluster, client
    ):
        client.upsert("b", "pre", 1)
        cluster.run_until_idle()
        # Partition node1 <-> node2: replication between them stalls but
        # neither is "down".
        cluster.network.partition("node1", "node2")
        client.upsert("b", "during", 2)
        cluster.run_until_idle()
        cluster.network.heal()
        cluster.run_until_idle()
        # After healing, every replica converges.
        total_replica_docs = sum(
            sum(1 for _k, e in cluster.node(f"node{n}").engines["b"]
                .vbuckets[vb].hashtable.items() if not e.doc.meta.deleted)
            for n in (1, 2, 3)
            for vb in cluster.node(f"node{n}").engines["b"]
            .owned_vbuckets(VBucketState.REPLICA)
        )
        assert total_replica_docs == 2

    def test_durability_fails_when_replica_unreachable(self, cluster, client):
        result_key = "needs-replica"
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key(result_key)
        replica_node = cluster_map.replica_nodes(vb)[0]
        cluster.network.set_down(replica_node)
        with pytest.raises(DurabilityError):
            client.upsert("b", result_key, {"v": 1}, replicate_to=1)
        # The write itself still took effect on the active (durability is
        # an observation, not a transaction).
        cluster.network.set_down(replica_node, False)
        assert client.get("b", result_key).value == {"v": 1}


class TestDivergentReplica:
    def test_replica_ahead_of_new_active_is_reset(self, cluster, client):
        """Failover promotes the least-caught-up copy; the old (ahead)
        replica must be detected via the DCP rollback path and rebuilt."""
        for i in range(20):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("k0")
        active = cluster_map.active_node(vb)
        replica = cluster_map.replica_nodes(vb)[0]
        # Replica "hears" extra mutations the active never had (simulates
        # a divergent history after a botched failover).
        replica_engine = cluster.node(replica).engines["b"]
        replica_vb = replica_engine.vbuckets[vb]
        from repro.common.document import Document, DocumentMeta
        replica_engine.apply_replicated(vb, Document(
            DocumentMeta(key="phantom", cas=10**12,
                         seqno=replica_vb.high_seqno + 100, rev=1),
            {"phantom": True},
        ))
        assert replica_vb.high_seqno > \
            cluster.node(active).engines["b"].vbuckets[vb].high_seqno
        # Force the replicator to re-derive streams: bump map revision.
        cluster.manager.cluster_maps["b"].revision += 1
        cluster.manager.push_map("b")
        cluster.run_until_idle()
        # The divergent replica was reset and rebuilt from the active:
        # the phantom is gone and real data is present.
        new_vb = cluster.node(replica).engines["b"].vbuckets[vb]
        assert new_vb.hashtable.peek("phantom") is None
        for i in range(20):
            cluster_map2 = cluster.manager.cluster_maps["b"]
            if cluster_map2.vbucket_for_key(f"k{i}") == vb:
                assert new_vb.hashtable.peek(f"k{i}") is not None


class TestServiceLoss:
    def test_query_routing_fails_over_to_surviving_query_node(self):
        cluster = Cluster(
            nodes=[("d1", {"data"}), ("q1", {"query"}), ("q2", {"query"}),
                   ("i1", {"index"})],
            vbuckets=8,
        )
        cluster.create_bucket("b", replicas=0)
        client = cluster.connect()
        client.upsert("b", "k", {"v": 1})
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        assert cluster.service_node.__self__ is cluster  # sanity
        cluster.network.set_down("q1")
        rows = cluster.query("SELECT x.v FROM b x",
                             scan_consistency="request_plus").rows
        assert rows == [{"v": 1}]

    def test_all_query_nodes_down(self):
        cluster = Cluster(
            nodes=[("d1", {"data"}), ("q1", {"query"})], vbuckets=8,
        )
        cluster.create_bucket("b", replicas=0)
        cluster.network.set_down("q1")
        with pytest.raises(ServiceUnavailableError):
            cluster.query("SELECT 1")

    def test_gsi_scan_with_index_node_down(self):
        cluster = Cluster(
            nodes=[("d1", {"data"}), ("i1", {"index"}), ("q1", {"query"})],
            vbuckets=8,
        )
        cluster.create_bucket("b", replicas=0)
        client = cluster.connect()
        for i in range(5):
            client.upsert("b", f"k{i}", {"v": i})
        cluster.query("CREATE INDEX by_v ON b(v) USING GSI")
        cluster.network.set_down("i1")
        # Every partition holds rows no other node serves: a scan that
        # skipped the down node would silently return an incomplete (here
        # empty) result set.  It must fail instead.
        with pytest.raises(NodeDownError):
            cluster.gsi.scan("by_v")


class TestNodeCrashRecovery:
    def test_node_process_crash_loses_memory_keeps_disk(self, cluster, client):
        """Crash = lose unsynced disk bytes + all memory.  Recovery rebuilds
        engines from the storage files (what survives is what the flusher
        committed)."""
        client.upsert("b", "durable", {"v": 1}, persist_to=1)
        result_key_map = cluster.manager.cluster_maps["b"]
        vb = result_key_map.vbucket_for_key("durable")
        node_name = result_key_map.active_node(vb)
        node = cluster.node(node_name)
        node.disk.crash()
        # Reopen the store the way a restarting node would.
        from repro.storage.couchstore import VBucketStore
        reopened = VBucketStore(node.disk, f"b/vb{vb}.couch", vb)
        assert reopened.get("durable").value == {"v": 1}

    def test_unpersisted_write_lost_on_crash(self, cluster, client):
        client.upsert("b", "volatile", {"v": 1})  # memory-only ack
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("volatile")
        node = cluster.node(cluster_map.active_node(vb))
        # Crash before any flusher round runs.
        node.disk.crash()
        from repro.storage.couchstore import VBucketStore
        reopened = VBucketStore(node.disk, f"b/vb{vb}.couch", vb)
        assert not reopened.contains("volatile")


class TestStaleClients:
    def test_many_clients_survive_serial_topology_changes(self, cluster):
        clients = [cluster.connect() for _ in range(4)]
        for i, c in enumerate(clients):
            c.upsert("b", f"seed{i}", {"i": i})
        cluster.run_until_idle()
        cluster.add_node("node4")
        cluster.rebalance()
        cluster.failover("node2")
        cluster.rebalance()
        for i, c in enumerate(clients):
            assert c.get("b", f"seed{i}").value == {"i": i}
            c.upsert("b", f"seed{i}", {"i": i, "updated": True})
        for i, c in enumerate(clients):
            assert c.get("b", f"seed{i}").value["updated"]
