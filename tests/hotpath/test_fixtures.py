"""Every broken fixture must fail with exactly its intended check, and
the tree itself must analyze clean -- the tier-1 gate that keeps the
hot-path cost invariants true going forward, mirroring the CI
``repro-hotpath`` step (and the shape of ``tests/flow/test_fixtures.py``)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import parse_suppressions, suppressed
from repro.flow.callgraph import build_callgraph
from repro.flow.project import Project
from repro.hotpath import analyze
from repro.hotpath.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: fixture directory -> the single check its defect must trip.
EXPECTED = {
    "quadratic_membership": "quadratic-membership",
    "list_shift": "list-shift",
    "sort_in_loop": "sort-in-loop",
    "str_concat_in_loop": "str-concat-in-loop",
    "copy_in_loop": "copy-in-loop",
    "invariant_in_loop": "invariant-in-loop",
    "n_plus_one_rpc": "n-plus-one-rpc",
    "cost_undeclared": "cost-undeclared",
    "cost_exceeds_caller": "cost-exceeds-caller",
    "cost_loop_amplified": "cost-loop-amplified",
}


def test_every_fixture_is_covered():
    assert sorted(EXPECTED) == sorted(
        p.name for p in FIXTURES.iterdir() if p.is_dir()
    )


def test_every_check_has_a_fixture():
    from repro.hotpath import ALL_CHECKS

    assert sorted(EXPECTED.values()) == sorted(ALL_CHECKS)


@pytest.mark.parametrize("fixture,check", sorted(EXPECTED.items()))
def test_fixture_fails_with_its_intended_check(fixture, check, capsys):
    code = main([str(FIXTURES / fixture), "--profile", "strict"])
    out = capsys.readouterr().out
    assert code == 1, out
    finding_lines = [
        line for line in out.splitlines()
        if line and not line.startswith("repro-hotpath:")
    ]
    assert finding_lines, out
    assert all(f" {check}: " in line for line in finding_lines), out


def test_repro_package_is_strictly_clean():
    files = sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    project = Project.build(files)
    assert not project.parse_errors
    result = analyze(project, build_callgraph(project))
    suppressions = {
        module.path: parse_suppressions(module.source_lines, "repro-hotpath")
        for module in project.modules.values()
    }
    remaining = [
        f for f in result.findings
        if not suppressed(f.check, f.line, suppressions.get(f.path, {}))
    ]
    assert remaining == [], "\n".join(f.format() for f in remaining)
    # The hot set itself must stay non-trivial: the KV ops, client
    # senders, and operator bodies are decorated roots.
    assert len(result.hotset.roots) > 40
    assert len(result.hotset.members) > len(result.hotset.roots)


def test_tree_clean_through_the_cli(capsys):
    code = main([str(REPO_ROOT / "src" / "repro"), "--profile", "strict"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert out.startswith("repro-hotpath: 0 findings"), out
