"""Hot-set derivation: roots, closure, edge-kind scoping, provenance.

The analyzer's precision hinges on the hot set being exactly the code
that executes on behalf of a declared root -- decorated functions and
scheduler pumps in, reference-only bindings and cold helpers out.
"""

from __future__ import annotations

import textwrap

from repro.flow.callgraph import build_callgraph
from repro.flow.hotset import derive_hot_set
from repro.flow.project import Project
from repro.hotpath import analyze

COSTMODEL_STUB = """
    def hot_path(fn):
        fn.__hot_path__ = True
        return fn


    def cost(bound):
        def mark(fn):
            fn.__declared_cost__ = bound
            return fn
        return mark
    """


def _build(tmp_path, files: dict[str, str]):
    files = dict(files)
    files.setdefault("common/costmodel.py", COSTMODEL_STUB)
    for rel, source in files.items():
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    project = Project.build(sorted((tmp_path / "repro").rglob("*.py")))
    assert not project.parse_errors
    graph = build_callgraph(project)
    return project, graph, derive_hot_set(project, graph)


def _member(hotset, suffix: str) -> str | None:
    return next((f for f in hotset.members if f.endswith(suffix)), None)


class TestRootsAndClosure:
    def test_decorated_root_pulls_in_its_callees(self, tmp_path):
        _, _, hotset = _build(tmp_path, {"kv/engine.py": """
            from ..common.costmodel import cost, hot_path


            def encode(doc):
                return repr(doc)


            @hot_path
            @cost("O(1)")
            def get(store, key):
                return encode(store[key])


            def cold_admin_sweep(stores):
                return [s for s in stores]
            """})
        assert _member(hotset, "engine.get")
        assert _member(hotset, "engine.encode")
        assert _member(hotset, "engine.cold_admin_sweep") is None
        root = _member(hotset, "engine.get")
        assert hotset.roots[root] == "@hot_path"

    def test_pump_registration_is_a_root(self, tmp_path):
        _, _, hotset = _build(tmp_path, {"kv/flusher.py": """
            class Flusher:
                def __init__(self, scheduler):
                    scheduler.register("kv.flusher", self._pump)

                def _pump(self):
                    return self._drain()

                def _drain(self):
                    return []
            """})
        pump = _member(hotset, "Flusher._pump")
        assert pump is not None
        assert hotset.roots[pump].startswith("pump:")
        # The pump's callees ride along without any decorator.
        assert _member(hotset, "Flusher._drain")

    def test_reference_only_binding_stays_cold(self, tmp_path):
        _, _, hotset = _build(tmp_path, {"kv/engine.py": """
            from ..common.costmodel import cost, hot_path


            class Engine:
                @hot_path
                @cost("O(1)")
                def start(self):
                    self.on_close = self.cold_sweep
                    return True

                def cold_sweep(self):
                    return list(self.__dict__)
            """})
        assert _member(hotset, "Engine.start")
        # Storing a bound method is not running it: ``ref`` edges do
        # not extend the hot set.
        assert _member(hotset, "Engine.cold_sweep") is None

    def test_why_chain_traces_back_to_the_root(self, tmp_path):
        _, _, hotset = _build(tmp_path, {"kv/engine.py": """
            from ..common.costmodel import cost, hot_path


            def inner(doc):
                return doc


            def outer(doc):
                return inner(doc)


            @hot_path
            @cost("O(1)")
            def get(store, key):
                return outer(store[key])
            """})
        why = hotset.why(_member(hotset, "engine.inner"))
        assert "@hot_path root" in why
        assert "get" in why and "outer" in why


class TestRuleScoping:
    def test_cold_code_is_not_scanned(self, tmp_path):
        project, graph, _ = _build(tmp_path, {"tools/offline.py": """
            def rebuild_report(entries):
                lines = []
                while entries:
                    lines.append(entries.pop(0))
                return lines
            """})
        result = analyze(project, graph)
        assert result.findings == []
        assert result.hotset.members == set()

    def test_same_defect_in_hot_code_is_flagged(self, tmp_path):
        project, graph, _ = _build(tmp_path, {"tools/online.py": """
            from ..common.costmodel import cost, hot_path


            @hot_path
            @cost("O(n)")
            def rebuild_report(entries):
                lines = []
                while entries:
                    lines.append(entries.pop(0))
                return lines
            """})
        result = analyze(project, graph)
        assert [f.check for f in result.findings] == ["list-shift"]
        # Findings carry the provenance of why the function is hot.
        assert "@hot_path root" in result.findings[0].message

    def test_defect_in_pulled_in_callee_is_flagged(self, tmp_path):
        project, graph, _ = _build(tmp_path, {"tools/chain.py": """
            from ..common.costmodel import cost, hot_path


            def helper(entries):
                out = ""
                for entry in entries:
                    out += str(entry)
                return out


            @hot_path
            @cost("O(n)")
            def render(entries):
                return helper(entries)
            """})
        result = analyze(project, graph)
        assert [f.check for f in result.findings] == ["str-concat-in-loop"]
        assert "@hot_path root chain.render via" in result.findings[0].message
