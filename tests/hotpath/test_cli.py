"""The ``python -m repro.hotpath`` front end: the 0/1/2 exit contract
shared with repro-lint/flow/sanitize, output formats, profiles,
suppressions, and the hot-set provenance report."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.hotpath.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"

COSTMODEL_STUB = """
    def hot_path(fn):
        fn.__hot_path__ = True
        return fn


    def cost(bound):
        def mark(fn):
            fn.__declared_cost__ = bound
            return fn
        return mark
    """


def _write_tree(tmp_path, files: dict[str, str]) -> Path:
    files = dict(files)
    files.setdefault("common/costmodel.py", COSTMODEL_STUB)
    for rel, source in files.items():
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


CLEAN_TREE = {"kv/engine.py": """
    from ..common.costmodel import cost, hot_path


    @hot_path
    @cost("O(1)")
    def get(store, key):
        return store[key]
    """}


class TestExitContract:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = _write_tree(tmp_path, CLEAN_TREE)
        assert main([str(root), "--profile", "strict"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main([str(FIXTURES / "list_shift"), "--profile", "strict"])
        assert code == 1
        assert "list-shift" in capsys.readouterr().out

    def test_unknown_check_is_a_usage_error(self, capsys):
        code = main([str(FIXTURES / "list_shift"), "--check", "nonsense"])
        assert code == 2
        assert "unknown check" in capsys.readouterr().err

    def test_no_files_is_a_usage_error(self, tmp_path, capsys):
        code = main([str(tmp_path / "does-not-exist")])
        assert code == 2
        assert "no Python files" in capsys.readouterr().err

    def test_syntax_error_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        assert main([str(tmp_path)]) == 2
        assert "broken.py" in capsys.readouterr().err


class TestCheckSelection:
    def test_other_checks_do_not_run(self, capsys):
        """The membership fixture is clean as far as list-shift goes."""
        code = main([str(FIXTURES / "quadratic_membership"),
                     "--check", "list-shift", "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_selected_check_still_fires(self, capsys):
        code = main([str(FIXTURES / "quadratic_membership"),
                     "--check", "quadratic-membership",
                     "--profile", "strict"])
        assert code == 1
        assert "quadratic-membership" in capsys.readouterr().out

    def test_comma_separated_selection(self, capsys):
        code = main([str(FIXTURES / "cost_exceeds_caller"), "--check",
                     "cost-exceeds-caller,cost-loop-amplified",
                     "--profile", "strict"])
        assert code == 1
        assert "cost-exceeds-caller" in capsys.readouterr().out


class TestProfiles:
    def test_relaxed_exempts_cost_undeclared(self, capsys):
        """Fixture trees live outside src/repro, so auto resolves to
        relaxed -- a demo hot root need not commit to a @cost bound."""
        assert main([str(FIXTURES / "cost_undeclared")]) == 0
        capsys.readouterr()

    def test_strict_requires_the_declaration(self, capsys):
        code = main([str(FIXTURES / "cost_undeclared"),
                     "--profile", "strict"])
        assert code == 1
        assert "cost-undeclared" in capsys.readouterr().out

    def test_relaxed_still_flags_rule_findings(self, capsys):
        assert main([str(FIXTURES / "list_shift")]) == 1
        capsys.readouterr()


class TestSuppressions:
    def test_disable_next_silences_the_finding(self, tmp_path, capsys):
        root = _write_tree(tmp_path, {"dcp/stream.py": """
            from ..common.costmodel import cost, hot_path


            @hot_path
            @cost("O(n)")
            def drain(pending):
                taken = []
                while pending:
                    # The queue is bounded at 2 in-flight messages.
                    # repro-hotpath: disable-next=list-shift
                    taken.append(pending.pop(0))
                return taken
            """})
        assert main([str(root), "--profile", "strict"]) == 0
        capsys.readouterr()

    def test_other_tools_suppressions_do_not_apply(self, tmp_path, capsys):
        root = _write_tree(tmp_path, {"dcp/stream.py": """
            from ..common.costmodel import cost, hot_path


            @hot_path
            @cost("O(n)")
            def drain(pending):
                taken = []
                while pending:
                    # repro-lint: disable-next=list-shift
                    taken.append(pending.pop(0))
                return taken
            """})
        assert main([str(root), "--profile", "strict"]) == 1
        capsys.readouterr()


class TestOutputFormats:
    def test_github_format_emits_error_commands(self, capsys):
        code = main([str(FIXTURES / "n_plus_one_rpc"), "--profile",
                     "strict", "--format", "github", "-q"])
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("::error ")
        assert "title=repro-hotpath" in out and "n-plus-one-rpc" in out

    def test_quiet_drops_the_summary_line(self, tmp_path, capsys):
        root = _write_tree(tmp_path, CLEAN_TREE)
        assert main([str(root), "--profile", "strict", "-q"]) == 0
        assert capsys.readouterr().out == ""

    def test_summary_counts_the_hot_set(self, tmp_path, capsys):
        root = _write_tree(tmp_path, CLEAN_TREE)
        assert main([str(root), "--profile", "strict"]) == 0
        out = capsys.readouterr().out
        assert "1 hot functions from 1 roots" in out


class TestHotSetReport:
    def test_report_prints_provenance_and_exits_zero(self, capsys):
        code = main([str(FIXTURES / "invariant_in_loop"),
                     "--report", "hot-set"])
        out = capsys.readouterr().out
        assert code == 0
        assert "project_rows" in out
        assert "@hot_path" in out
        # compile_expr is hot *via* the root, not a root itself.
        assert "via compile_expr" in out or "compile_expr" in out
        assert "not a gate" in out
