from ..common.costmodel import cost, hot_path
from .compile import compile_expr


@hot_path
@cost("O(n)")
def project_rows(rows, expr):
    out = []
    for row in rows:
        fn = compile_expr(expr)
        out.append(fn(row))
    return out
