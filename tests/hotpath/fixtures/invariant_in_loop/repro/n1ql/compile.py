def compile_expr(expr):
    def evaluate(row):
        return row

    return evaluate
