from ..common.costmodel import cost, hot_path


@hot_path
@cost("O(n)")
def expand(template, keys):
    entries = []
    for key in keys:
        entry = dict(template)
        entry["key"] = key
        entries.append(entry)
    return entries
