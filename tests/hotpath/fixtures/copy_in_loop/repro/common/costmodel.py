"""Stub of repro.common.costmodel: the analyzer reads decorators
statically (by name), so fixture trees never import the real package."""


def hot_path(fn):
    fn.__hot_path__ = True
    return fn


def cost(bound):
    def mark(fn):
        fn.__declared_cost__ = bound
        return fn
    return mark
