from ..common.costmodel import cost, hot_path


@hot_path
@cost("O(n)")
def render_rows(rows):
    payload = ""
    for row in rows:
        payload += repr(row)
    return payload
