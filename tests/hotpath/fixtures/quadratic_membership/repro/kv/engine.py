from ..common.costmodel import cost, hot_path


@hot_path
@cost("O(n)")
def dedupe_events(events):
    seen = []
    unique = []
    for event in events:
        if event in seen:
            continue
        seen.append(event)
        unique.append(event)
    return unique
