from ..common.costmodel import cost, hot_path


@hot_path
@cost("O(n)")
def read_profiles(client, keys):
    docs = []
    for key in keys:
        docs.append(client.get("b", key))
    return docs
