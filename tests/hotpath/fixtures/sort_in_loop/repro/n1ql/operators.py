from ..common.costmodel import cost, hot_path


@hot_path
@cost("O(n)")
def merge_batches(batches, ranking):
    merged = []
    for batch in batches:
        order = sorted(ranking)
        merged.append((order, batch))
    return merged
