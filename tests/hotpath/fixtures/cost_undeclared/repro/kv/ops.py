from ..common.costmodel import hot_path


@hot_path
def lookup(store, key):
    return store.fetch(key)
