from ..common.costmodel import cost, hot_path


@cost("O(n)")
def flush_batch(batch):
    return len(batch)


@hot_path
@cost("O(n)")
def flush_all(batches):
    total = 0
    for batch in batches:
        total += flush_batch(batch)
    return total
