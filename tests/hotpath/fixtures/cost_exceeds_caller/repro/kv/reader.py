from ..common.costmodel import cost, hot_path


@cost("O(n)")
def scan_all(store):
    return [doc for doc in store]


@hot_path
@cost("O(1)")
def first(store):
    return scan_all(store)[0]
