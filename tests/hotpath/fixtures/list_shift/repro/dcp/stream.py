from ..common.costmodel import cost, hot_path


@hot_path
@cost("O(n)")
def drain(pending):
    messages = []
    while pending:
        messages.append(pending.pop(0))
    return messages
