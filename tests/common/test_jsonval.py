"""Tests for JSON value helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.jsonval import (
    decode,
    deep_copy,
    encode_canonical,
    get_path,
    is_json_value,
    set_path,
    sizeof,
    unset_path,
    validate_json_value,
)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestIsJsonValue:
    def test_scalars(self):
        for value in (None, True, False, 0, 1.5, "s"):
            assert is_json_value(value)

    def test_containers(self):
        assert is_json_value([1, {"a": [None]}])

    def test_rejects_non_json(self):
        assert not is_json_value(object())
        assert not is_json_value({1: "int key"})
        assert not is_json_value([set()])

    def test_validate_raises(self):
        with pytest.raises(TypeError):
            validate_json_value({"x": object()})


class TestEncoding:
    def test_canonical_is_key_order_independent(self):
        assert encode_canonical({"a": 1, "b": 2}) == encode_canonical({"b": 2, "a": 1})

    @given(json_values)
    def test_roundtrip(self, value):
        assert decode(encode_canonical(value)) == value


class TestDeepCopy:
    def test_no_aliasing(self):
        original = {"a": [1, 2], "b": {"c": 3}}
        copy = deep_copy(original)
        copy["a"].append(99)
        copy["b"]["c"] = 99
        assert original == {"a": [1, 2], "b": {"c": 3}}

    @given(json_values)
    def test_equality(self, value):
        assert deep_copy(value) == value


class TestSizeof:
    def test_monotone_in_content(self):
        assert sizeof({"a": "x" * 100}) > sizeof({"a": "x"})

    def test_list_sums_members(self):
        assert sizeof([1, 2, 3]) > sizeof([1])

    @given(json_values)
    def test_positive(self, value):
        assert sizeof(value) > 0

    def test_rejects_non_json(self):
        with pytest.raises(TypeError):
            sizeof(object())


class TestPaths:
    def setup_method(self):
        self.doc = {
            "name": "Dipti",
            "billing": {"address": {"zip": "94040"}},
            "orders": [{"sku": "a1"}, {"sku": "b2"}],
        }

    def test_get_nested(self):
        assert get_path(self.doc, "billing.address.zip") == (True, "94040")

    def test_get_through_array(self):
        assert get_path(self.doc, "orders.1.sku") == (True, "b2")

    def test_get_negative_index(self):
        assert get_path(self.doc, "orders.-1.sku") == (True, "b2")

    def test_get_missing(self):
        found, value = get_path(self.doc, "billing.phone")
        assert not found and value is None

    def test_get_through_scalar_fails(self):
        found, _ = get_path(self.doc, "name.first")
        assert not found

    def test_get_array_out_of_range(self):
        found, _ = get_path(self.doc, "orders.9.sku")
        assert not found

    def test_get_empty_path_returns_root(self):
        assert get_path(self.doc, "") == (True, self.doc)

    def test_set_creates_intermediates(self):
        set_path(self.doc, "contact.phone.home", "555")
        assert self.doc["contact"]["phone"]["home"] == "555"

    def test_set_overwrites(self):
        set_path(self.doc, "billing.address.zip", "10001")
        assert self.doc["billing"]["address"]["zip"] == "10001"

    def test_set_array_element(self):
        set_path(self.doc, "orders.0.sku", "z9")
        assert self.doc["orders"][0]["sku"] == "z9"

    def test_set_empty_path_rejected(self):
        with pytest.raises(ValueError):
            set_path(self.doc, "", 1)

    def test_unset_removes(self):
        assert unset_path(self.doc, "billing.address.zip")
        assert get_path(self.doc, "billing.address.zip") == (False, None)

    def test_unset_missing_returns_false(self):
        assert not unset_path(self.doc, "nope.nope")

    def test_unset_array_element(self):
        assert unset_path(self.doc, "orders.0")
        assert len(self.doc["orders"]) == 1
