"""Schedule policies and the scheduler's policy/safety contract.

The sanitizer's whole premise is that a seed *is* a schedule: identical
seeds must reproduce identical orders, every order must be a permutation
of the live pumps (quiescence detection depends on it), and the
scheduler must tolerate mid-round unregistration and reject reentrancy.
"""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidArgumentError, SchedulerReentrancyError
from repro.common.scheduler import (
    RegistrationOrder,
    SchedulePolicy,
    Scheduler,
    SeededShuffle,
    StarveOne,
    Weighted,
)

NAMES = ["flusher/n1/b", "replicator/n1/b", "views/n1/b",
         "projector/n1/b", "xdcr/b->b", "cluster-manager"]


# -- policy determinism and the permutation contract ------------------------------


@pytest.mark.parametrize("make_policy", [
    lambda: RegistrationOrder(),
    lambda: SeededShuffle(7),
    lambda: StarveOne(7),
    lambda: Weighted(7, {"flusher": 3.0, "xdcr": 0.25}),
])
def test_identical_seeds_reproduce_identical_orders(make_policy):
    first, second = make_policy(), make_policy()
    for round_index in range(40):
        assert first.order(round_index, list(NAMES)) == \
            second.order(round_index, list(NAMES))


@pytest.mark.parametrize("policy", [
    RegistrationOrder(),
    SeededShuffle(3),
    StarveOne(3),
    Weighted(3, {"flusher": 3.0}),
])
def test_every_order_is_a_permutation(policy):
    for round_index in range(40):
        ordered = policy.order(round_index, list(NAMES))
        assert sorted(ordered) == sorted(NAMES)


def test_registration_order_is_identity():
    assert RegistrationOrder().order(5, list(NAMES)) == NAMES


def test_different_seeds_explore_different_orders():
    orders = {tuple(SeededShuffle(seed).order(0, list(NAMES)))
              for seed in range(1, 20)}
    assert len(orders) > 1


def test_seeded_shuffle_varies_across_rounds():
    policy = SeededShuffle(11)
    orders = {tuple(policy.order(r, list(NAMES))) for r in range(20)}
    assert len(orders) > 1


def test_starve_one_pins_the_epoch_victim_last():
    policy = StarveOne(5)
    for epoch in range(4):
        base = epoch * StarveOne.EPOCH_ROUNDS
        victims = {policy.order(base + r, list(NAMES))[-1]
                   for r in range(StarveOne.EPOCH_ROUNDS)}
        assert len(victims) == 1  # one victim per epoch, every round


def test_weighted_rejects_nonpositive_weights():
    policy = Weighted(1, {"flusher": 0.0})
    with pytest.raises(InvalidArgumentError, match="weight"):
        policy.order(0, list(NAMES))


def test_weighted_bias_orders_heavy_kinds_earlier_on_average():
    policy_positions = []
    for seed in range(1, 60):
        ordered = Weighted(seed, {"flusher": 50.0}).order(0, list(NAMES))
        policy_positions.append(ordered.index("flusher/n1/b"))
    average = sum(policy_positions) / len(policy_positions)
    assert average < len(NAMES) / 2 - 0.5


def test_describe_names_the_seed():
    assert "7" in SeededShuffle(7).describe()
    assert "7" in StarveOne(7).describe()
    assert "7" in Weighted(7).describe()
    assert RegistrationOrder().describe() == "registration-order"


# -- scheduler integration ---------------------------------------------------------


def _run_traced(policy: SchedulePolicy) -> list[list[str]]:
    scheduler = Scheduler(policy=policy)
    scheduler.trace = []
    budget = {"a": 2, "b": 2, "c": 2}

    def make_pump(name):
        def pump() -> bool:
            if budget[name] <= 0:
                return False
            budget[name] -= 1
            return True
        return pump

    for name in budget:
        scheduler.register(name, make_pump(name))
    scheduler.run_until_idle()
    return scheduler.trace


def test_scheduler_trace_reproduces_under_same_seed():
    assert _run_traced(SeededShuffle(9)) == _run_traced(SeededShuffle(9))


def test_scheduler_rejects_non_permutation_policy():
    class Dropper(SchedulePolicy):
        def order(self, round_index, names):
            return names[:-1]

    scheduler = Scheduler(policy=Dropper())
    scheduler.register("a", lambda: False)
    scheduler.register("b", lambda: False)
    with pytest.raises(InvalidArgumentError, match="permutation"):
        scheduler.step()


def test_duplicate_pump_registration_rejected():
    scheduler = Scheduler()
    scheduler.register("a", lambda: False)
    with pytest.raises(InvalidArgumentError, match="already registered"):
        scheduler.register("a", lambda: False)


def test_pump_unregistered_mid_round_does_not_run():
    scheduler = Scheduler()
    ran = []

    def first() -> bool:
        if "first" not in ran:
            ran.append("first")
            scheduler.unregister("second")
            return True
        return False

    def second() -> bool:
        ran.append("second")
        return False

    scheduler.register("first", first)
    scheduler.register("second", second)
    scheduler.run_until_idle()
    assert ran == ["first"]  # the stale snapshot never executed "second"


def test_pump_registered_mid_round_joins_next_round():
    scheduler = Scheduler()
    scheduler.trace = []
    late_ran = []

    def late() -> bool:
        late_ran.append(True)
        return False

    def registrar() -> bool:
        if "late" not in scheduler.pump_names():
            scheduler.register("late", late)
            return True
        return False

    scheduler.register("registrar", registrar)
    scheduler.run_until_idle()
    assert late_ran  # it did run eventually...
    assert "late" not in scheduler.trace[0]  # ...but not in the round
    assert "late" in scheduler.trace[1]      # it was registered during


@pytest.mark.parametrize("reenter", [
    lambda s: s.step(),
    lambda s: s.run_until_idle(),
    lambda s: s.run_until(lambda: False),
    lambda s: (s.call_later(0.0, lambda: None), s.advance(1.0)),
])
def test_pump_reentrancy_raises(reenter):
    scheduler = Scheduler()
    seen = []

    def bad() -> bool:
        if seen:
            return False
        seen.append(True)
        reenter(scheduler)
        return True

    scheduler.register("bad", bad)
    with pytest.raises(SchedulerReentrancyError, match="re-entered"):
        scheduler.run_until_idle()


def test_reentrancy_flag_cleared_after_normal_round():
    scheduler = Scheduler()
    scheduler.register("fine", lambda: False)
    scheduler.step()
    scheduler.step()  # would raise if _in_pump leaked


def test_current_pump_visible_inside_and_cleared_outside():
    scheduler = Scheduler()
    observed = []

    def pump() -> bool:
        observed.append(scheduler.current_pump)
        return False

    scheduler.register("me", pump)
    scheduler.step()
    assert observed == ["me"]
    assert scheduler.current_pump is None
