"""Tests for the from-scratch CRC32 and the key -> vBucket fold."""

import zlib

from hypothesis import given
from hypothesis import strategies as st

from repro.common.crc import crc32, vbucket_for_key


class TestCrc32:
    def test_empty(self):
        assert crc32(b"") == 0

    def test_known_vector(self):
        # Standard CRC-32 check value for "123456789".
        assert crc32(b"123456789") == 0xCBF43926

    def test_matches_zlib_on_samples(self):
        for sample in [b"a", b"hello world", b"\x00\xff" * 100, b"key::123"]:
            assert crc32(sample) == zlib.crc32(sample)

    @given(st.binary(max_size=256))
    def test_matches_zlib_property(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_streaming_continuation(self, a, b):
        assert crc32(b, crc32(a)) == zlib.crc32(b, zlib.crc32(a))


class TestVBucketMapping:
    def test_deterministic(self):
        assert vbucket_for_key("user::1", 1024) == vbucket_for_key("user::1", 1024)

    def test_str_and_bytes_agree(self):
        assert vbucket_for_key("abc", 1024) == vbucket_for_key(b"abc", 1024)

    def test_in_range(self):
        for i in range(1000):
            assert 0 <= vbucket_for_key(f"key{i}", 64) < 64

    @given(st.text(max_size=64), st.sampled_from([16, 64, 256, 1024]))
    def test_in_range_property(self, key, vbuckets):
        assert 0 <= vbucket_for_key(key, vbuckets) < vbuckets

    def test_spread_is_reasonably_uniform(self):
        """10k sequential keys over 64 vBuckets: no partition should be
        wildly over- or under-loaded (the paper relies on CRC32 spreading
        load evenly across partitions, section 4.1)."""
        counts = [0] * 64
        for i in range(10_000):
            counts[vbucket_for_key(f"user::{i}", 64)] += 1
        expected = 10_000 / 64
        assert min(counts) > expected * 0.5
        assert max(counts) < expected * 1.5

    def test_known_libcouchbase_fold(self):
        # The fold must use bits 16..30 of the digest.
        digest = crc32(b"somekey")
        assert vbucket_for_key("somekey", 1024) == ((digest >> 16) & 0x7FFF) % 1024
