"""Scheduler safety valves and timer semantics.

The livelock valve and timer cancellation are what the pump-contract
lint rule protects at the source level; these tests pin the runtime
behavior: a non-quiescing pump set raises :class:`LivelockError`
instead of hanging, cancelled timers never fire, and pumps run in
registration order so rounds are deterministic.
"""

from __future__ import annotations

import pytest

from repro.common.errors import LivelockError, ReproError
from repro.common.scheduler import Scheduler


def test_run_until_idle_raises_livelock_after_max_rounds(monkeypatch):
    scheduler = Scheduler()
    monkeypatch.setattr(Scheduler, "MAX_ROUNDS", 50)
    scheduler.register("spinner", lambda: True)
    with pytest.raises(LivelockError, match="livelock"):
        scheduler.run_until_idle()


def test_livelock_error_is_a_runtime_error_and_repro_error(monkeypatch):
    scheduler = Scheduler()
    monkeypatch.setattr(Scheduler, "MAX_ROUNDS", 10)
    scheduler.register("spinner", lambda: True)
    with pytest.raises(RuntimeError):
        scheduler.run_until_idle()
    with pytest.raises(ReproError):
        scheduler.run_until_idle()


def test_livelock_message_names_the_busy_pumps(monkeypatch):
    scheduler = Scheduler()
    monkeypatch.setattr(Scheduler, "MAX_ROUNDS", 5)
    scheduler.register("flusher", lambda: True)
    with pytest.raises(LivelockError, match="flusher"):
        scheduler.run_until_idle()


def test_run_until_raises_livelock_when_busy_past_budget():
    scheduler = Scheduler()
    scheduler.register("spinner", lambda: True)
    with pytest.raises(LivelockError):
        scheduler.run_until(lambda: False, max_rounds=10)


def test_cancelled_timer_never_fires():
    scheduler = Scheduler()
    fired = []
    handle = scheduler.call_later(5.0, lambda: fired.append("cancelled"))
    scheduler.call_later(5.0, lambda: fired.append("kept"))
    scheduler.cancel(handle)
    scheduler.advance(10.0)
    assert fired == ["kept"]


def test_cancel_updates_pending_timer_accounting():
    scheduler = Scheduler()
    first = scheduler.call_later(1.0, lambda: None)
    scheduler.call_later(2.0, lambda: None)
    assert scheduler.pending_timers() == 2
    scheduler.cancel(first)
    assert scheduler.pending_timers() == 1
    scheduler.advance(5.0)
    assert scheduler.pending_timers() == 0


def test_timers_fire_in_deadline_order_with_clock_set():
    scheduler = Scheduler()
    fired = []
    scheduler.call_later(3.0, lambda: fired.append(("late", scheduler.clock.now())))
    scheduler.call_later(1.0, lambda: fired.append(("early", scheduler.clock.now())))
    scheduler.advance(5.0)
    assert fired == [("early", 1.0), ("late", 3.0)]
    assert scheduler.clock.now() == 5.0


def test_pumps_run_in_registration_order():
    scheduler = Scheduler()
    calls = []

    def make_pump(name):
        def pump() -> bool:
            calls.append(name)
            return False
        return pump

    for name in ("a", "b", "c"):
        scheduler.register(name, make_pump(name))
    scheduler.step()
    assert calls == ["a", "b", "c"]
    assert scheduler.pump_names() == ["a", "b", "c"]


def test_unregister_removes_pump_from_rounds():
    scheduler = Scheduler()
    calls = []
    scheduler.register("keep", lambda: (calls.append("keep"), False)[1])
    scheduler.register("drop", lambda: (calls.append("drop"), False)[1])
    scheduler.unregister("drop")
    scheduler.step()
    assert calls == ["keep"]
