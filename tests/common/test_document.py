"""Tests for Document/DocumentMeta semantics."""


from repro.common.document import Document, DocumentMeta


class TestDocumentMeta:
    def test_defaults(self):
        meta = DocumentMeta(key="k")
        assert meta.cas == 0
        assert meta.seqno == 0
        assert not meta.deleted

    def test_copy_is_independent(self):
        meta = DocumentMeta(key="k", cas=5)
        copy = meta.copy()
        copy.cas = 9
        assert meta.cas == 5

    def test_expiry_semantics(self):
        meta = DocumentMeta(key="k", expiry=100.0)
        assert not meta.is_expired(99.9)
        assert meta.is_expired(100.0)
        assert meta.is_expired(500.0)

    def test_zero_expiry_never_expires(self):
        meta = DocumentMeta(key="k", expiry=0.0)
        assert not meta.is_expired(1e12)

    def test_tombstones_do_not_expire(self):
        meta = DocumentMeta(key="k", expiry=1.0, deleted=True)
        assert not meta.is_expired(100.0)


class TestDocument:
    def test_copy_deep_copies_value(self):
        doc = Document(DocumentMeta(key="k"), {"a": [1]})
        copy = doc.copy()
        copy.value["a"].append(2)
        assert doc.value == {"a": [1]}

    def test_key_property(self):
        assert Document(DocumentMeta(key="k"), 1).key == "k"

    def test_footprint_grows_with_value(self):
        small = Document(DocumentMeta(key="k"), "x")
        big = Document(DocumentMeta(key="k"), "x" * 1000)
        assert big.memory_footprint() > small.memory_footprint()

    def test_ejected_doc_charges_metadata_only(self):
        resident = Document(DocumentMeta(key="k"), "x" * 1000)
        ejected = Document(DocumentMeta(key="k"), None, ejected=True)
        assert ejected.memory_footprint() < resident.memory_footprint()

    def test_footprint_includes_key_bytes(self):
        short = Document(DocumentMeta(key="k"), None)
        long_key = Document(DocumentMeta(key="k" * 100), None)
        assert long_key.memory_footprint() > short.memory_footprint()
