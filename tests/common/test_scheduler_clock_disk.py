"""Tests for the virtual clock, cooperative scheduler, simulated disk,
network fabric, and metrics."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.disk import SimulatedDisk
from repro.common.errors import DiskFullError, NodeDownError
from repro.common.metrics import Histogram, MetricsRegistry
from repro.common.scheduler import Scheduler
from repro.common.transport import Network


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_cannot_go_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)


class TestScheduler:
    def test_run_until_idle_drains_queue(self):
        scheduler = Scheduler()
        queue = list(range(5))
        drained = []

        def pump():
            if queue:
                drained.append(queue.pop(0))
                return True
            return False

        scheduler.register("pump", pump)
        rounds = scheduler.run_until_idle()
        assert drained == [0, 1, 2, 3, 4]
        assert rounds == 5

    def test_pumps_feed_each_other(self):
        """Work produced by one pump in a round is consumed in a later
        round -- models flusher -> DCP -> indexer chains."""
        scheduler = Scheduler()
        stage1, stage2, done = [1, 2], [], []
        scheduler.register("s1", lambda: bool(stage1) and (stage2.append(stage1.pop()) or True))
        scheduler.register("s2", lambda: bool(stage2) and (done.append(stage2.pop()) or True))
        scheduler.run_until_idle()
        assert sorted(done) == [1, 2]

    def test_livelock_detection(self):
        scheduler = Scheduler()
        scheduler.MAX_ROUNDS = 50
        scheduler.register("busy", lambda: True)
        with pytest.raises(RuntimeError, match="livelock"):
            scheduler.run_until_idle()

    def test_run_until_condition(self):
        scheduler = Scheduler()
        state = {"n": 0}

        def pump():
            if state["n"] < 10:
                state["n"] += 1
                return True
            return False

        scheduler.register("p", pump)
        assert scheduler.run_until(lambda: state["n"] >= 3)
        assert state["n"] >= 3

    def test_run_until_unreachable_condition_returns_false(self):
        scheduler = Scheduler()
        scheduler.register("idle", lambda: False)
        assert not scheduler.run_until(lambda: False)

    def test_timers_fire_in_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_later(2.0, lambda: fired.append("b"))
        scheduler.call_later(1.0, lambda: fired.append("a"))
        scheduler.advance(3.0)
        assert fired == ["a", "b"]
        assert scheduler.clock.now() == 3.0

    def test_timer_cancel(self):
        scheduler = Scheduler()
        fired = []
        handle = scheduler.call_later(1.0, lambda: fired.append("x"))
        scheduler.cancel(handle)
        scheduler.advance(2.0)
        assert fired == []
        assert scheduler.pending_timers() == 0

    def test_unregister(self):
        scheduler = Scheduler()
        scheduler.register("a", lambda: False)
        scheduler.unregister("a")
        assert scheduler.pump_names() == []


class TestSimulatedDisk:
    def test_append_and_read(self):
        disk = SimulatedDisk()
        file = disk.open("vb0.couch")
        offset = file.append(b"hello")
        assert file.read(offset, 5) == b"hello"

    def test_crash_loses_unsynced(self):
        disk = SimulatedDisk()
        file = disk.open("f")
        file.append(b"durable")
        file.sync()
        file.append(b"volatile")
        disk.crash()
        assert file.size == len(b"durable")

    def test_crash_keeps_synced(self):
        disk = SimulatedDisk()
        file = disk.open("f")
        file.append(b"abc")
        file.sync()
        disk.crash()
        assert file.read(0, 3) == b"abc"

    def test_capacity_enforced(self):
        disk = SimulatedDisk(capacity=10)
        file = disk.open("f")
        file.append(b"12345")
        with pytest.raises(DiskFullError):
            file.append(b"123456789")

    def test_rename_is_atomic_swap(self):
        disk = SimulatedDisk()
        old = disk.open("data.couch")
        old.append(b"old")
        new = disk.open("data.couch.compact")
        new.append(b"newer")
        disk.delete("data.couch")
        disk.rename("data.couch.compact", "data.couch")
        assert disk.open("data.couch").read(0, 5) == b"newer"

    def test_rename_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            SimulatedDisk().rename("a", "b")

    def test_read_past_eof_raises(self):
        disk = SimulatedDisk()
        file = disk.open("f")
        file.append(b"ab")
        with pytest.raises(ValueError):
            file.read(0, 3)

    def test_io_accounting(self):
        disk = SimulatedDisk()
        file = disk.open("f")
        file.append(b"abcd")
        file.sync()
        file.read(0, 4)
        assert disk.stats.bytes_written == 4
        assert disk.stats.bytes_read == 4
        assert disk.stats.syncs == 1


class TestNetwork:
    class Echo:
        def ping(self, value):
            return value

    def test_call_routes(self):
        net = Network()
        net.register("n1", self.Echo())
        assert net.call("client", "n1", "ping", 42) == 42
        assert net.calls[("n1", "ping")] == 1

    def test_down_node_unreachable(self):
        net = Network()
        net.register("n1", self.Echo())
        net.set_down("n1")
        with pytest.raises(NodeDownError):
            net.call("client", "n1", "ping", 1)
        net.set_down("n1", False)
        assert net.call("client", "n1", "ping", 1) == 1

    def test_partition_is_pairwise(self):
        net = Network()
        net.register("n1", self.Echo())
        net.partition("n2", "n1")
        with pytest.raises(NodeDownError):
            net.call("n2", "n1", "ping", 1)
        assert net.call("n3", "n1", "ping", 1) == 1

    def test_heal_all(self):
        net = Network()
        net.register("n1", self.Echo())
        net.partition("n2", "n1")
        net.heal()
        assert net.call("n2", "n1", "ping", 1) == 1

    def test_heal_one_node_removes_all_its_partitions(self):
        net = Network()
        net.register("n1", self.Echo())
        net.register("n4", self.Echo())
        net.partition("n1", "n2")
        net.partition("n3", "n1")
        net.partition("n3", "n4")
        net.heal("n1")  # single argument: every partition involving n1
        assert net.call("n2", "n1", "ping", 1) == 1
        assert net.call("n3", "n1", "ping", 1) == 1
        with pytest.raises(NodeDownError):
            net.call("n3", "n4", "ping", 1)  # untouched pair stays cut

    def test_heal_pair_unordered(self):
        net = Network()
        net.register("n1", self.Echo())
        net.partition("n1", "n2")
        net.heal("n2", "n1")
        assert net.call("n2", "n1", "ping", 1) == 1

    def test_heal_none_with_node_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.heal(None, "n2")

    def test_unknown_endpoint(self):
        with pytest.raises(NodeDownError):
            Network().call("a", "ghost", "ping")

    def test_latency_charged(self):
        net = Network(default_latency=0.001)
        net.register("n1", self.Echo())
        net.call("c", "n1", "ping", 1)
        net.call("c", "n1", "ping", 1)
        assert net.latency_charged == pytest.approx(0.002)


class TestMetrics:
    def test_histogram_percentiles_ordered(self):
        histogram = Histogram()
        for i in range(1, 1001):
            histogram.record(i / 1000.0)
        assert histogram.percentile(50) <= histogram.percentile(95) <= histogram.percentile(99)
        assert histogram.percentile(50) == pytest.approx(0.5, rel=0.2)

    def test_histogram_mean(self):
        histogram = Histogram()
        histogram.record(1.0)
        histogram.record(3.0)
        assert histogram.mean == pytest.approx(2.0)

    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.percentile(99) == 0.0
        assert histogram.mean == 0.0

    def test_registry(self):
        registry = MetricsRegistry()
        registry.inc("ops")
        registry.inc("ops", 2)
        registry.observe("latency", 0.001)
        snap = registry.snapshot()
        assert snap["counters"]["ops"] == 3
        assert snap["histograms"]["latency"]["count"] == 1
        assert registry.counter_value("missing") == 0
