"""Every broken fixture must fail with exactly its intended check, and
the tree itself must analyze clean with *zero* suppressions -- the
tier-1 gate that keeps the declared lifecycles true going forward,
mirroring the CI ``repro-proto`` step (and the shape of
``tests/bounds/test_fixtures.py``)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.flow.callgraph import build_callgraph
from repro.flow.project import Project
from repro.proto import ALL_CHECKS, analyze
from repro.proto.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: fixture directory -> the single check its defect must trip.
EXPECTED = {
    "illegal_transition": "illegal-transition",
    "unguarded_transition": "unguarded-transition",
    "handoff_order": "handoff-order",
    "outside_owner": "transition-outside-owner",
    "silent_transition": "silent-transition",
}


def test_every_fixture_is_covered():
    assert sorted(EXPECTED) == sorted(
        p.name for p in FIXTURES.iterdir() if p.is_dir()
    )


def test_every_check_has_a_fixture():
    assert sorted(EXPECTED.values()) == sorted(ALL_CHECKS)


@pytest.mark.parametrize("fixture,check", sorted(EXPECTED.items()))
def test_fixture_fails_with_its_intended_check(fixture, check, capsys):
    code = main([str(FIXTURES / fixture), "--profile", "strict"])
    out = capsys.readouterr().out
    assert code == 1, out
    finding_lines = [
        line for line in out.splitlines()
        if line and not line.startswith("repro-proto:")
    ]
    assert finding_lines, out
    assert all(f" {check}: " in line for line in finding_lines), out


def test_repro_package_is_strictly_clean():
    files = sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    project = Project.build(files)
    assert not project.parse_errors
    result = analyze(project, build_callgraph(project))
    # Zero suppressions: the raw findings themselves must be empty, not
    # merely silenced.
    assert result.findings == [], "\n".join(
        f.format() for f in result.findings
    )
    # The declared surface must stay non-trivial: the vBucket, breaker,
    # DCP and XDCR lifecycles at minimum.
    assert len(result.protocols) >= 4
    assert len(result.inventory.bindings) >= 4
    assert len(result.inventory.sites) >= 15
    assert {spec.name for spec in result.protocols.values()} >= {
        "VBucketState", "CircuitBreaker", "DcpStreamState", "XdcrStreamState",
    }


def test_no_proto_suppressions_in_tree():
    proto_pkg = REPO_ROOT / "src" / "repro" / "proto"
    offenders = [
        path for path in (REPO_ROOT / "src" / "repro").rglob("*.py")
        # The analyzer's own package documents the syntax; everywhere
        # else the string can only be a live suppression comment.
        if proto_pkg not in path.parents
        and "repro-proto: disable" in path.read_text()
    ]
    assert offenders == []


def test_tree_clean_via_cli(capsys):
    code = main([str(REPO_ROOT / "src" / "repro"), "--profile", "strict"])
    out = capsys.readouterr().out
    assert code == 0, out
