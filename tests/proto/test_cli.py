"""The repro-proto CLI contract: exit codes, check selection, profiles,
suppressions (including cross-tool isolation), declaration forms, output
formats, the protocols report, and call-graph indirection -- one
contract shared with repro-lint/sanitize/flow/hotpath/bounds."""

from __future__ import annotations

import pytest

from repro.proto.cli import main

#: Stubs every fixture source starts from: the zero-overhead declaration
#: marker (read off the AST by name) and a metrics-shaped emitter.
STUBS = '''\
def protocol(*transitions, field=None, order=()):
    def mark(cls):
        return cls
    return mark


class Enum:
    pass


class Metrics:
    def inc(self, name):
        pass


'''

#: A guard that still admits an undeclared source: one illegal-transition.
BAD_MACHINE = STUBS + '''\
@protocol("IDLE->RUNNING", "RUNNING->DONE")
class Phase(Enum):
    IDLE = "idle"
    RUNNING = "running"
    DONE = "done"


class Machine:
    def __init__(self):
        self.phase = Phase.IDLE
        self.metrics = Metrics()

    def finish(self):
        if self.phase is not Phase.DONE:
            self.phase = Phase.DONE
            self.metrics.inc("machine.finished")
'''

#: The same machine guarded on the declared source: clean.
CLEAN_MACHINE = BAD_MACHINE.replace(
    "if self.phase is not Phase.DONE:",
    "if self.phase is Phase.RUNNING:",
)

#: A guarded, legal, but unobservable transition: silent-transition only.
SILENT = STUBS + '''\
@protocol("OFF->ON", "ON->OFF")
class Power(Enum):
    OFF = "off"
    ON = "on"


class Switch:
    def __init__(self):
        self.power = Power.OFF

    def turn_on(self):
        if self.power is Power.OFF:
            self.power = Power.ON
'''


def _write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return str(tmp_path)


class TestExitContract:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        code = main([_write(tmp_path, CLEAN_MACHINE), "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_MACHINE), "--profile", "strict"])
        out = capsys.readouterr().out
        assert code == 1
        assert "illegal-transition" in out
        assert "{IDLE}->DONE" in out

    def test_unknown_check_exits_two(self, tmp_path, capsys):
        code = main([_write(tmp_path, CLEAN_MACHINE), "--check", "nope"])
        assert code == 2
        assert "nope" in capsys.readouterr().err

    def test_no_files_exits_two(self, tmp_path, capsys):
        code = main([str(tmp_path)])
        assert code == 2
        assert "no Python files" in capsys.readouterr().err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        code = main([_write(tmp_path, "def broken(:\n")])
        assert code == 2
        assert "mod.py" in capsys.readouterr().err


class TestCheckSelection:
    def test_deselected_check_is_silent(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_MACHINE),
                     "--check", "handoff-order", "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_selected_check_still_fires(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_MACHINE),
                     "--check", "illegal-transition,handoff-order",
                     "--profile", "strict"])
        assert code == 1, capsys.readouterr().out


class TestProfiles:
    def test_relaxed_exempts_silent_transition(self, tmp_path, capsys):
        root = _write(tmp_path, SILENT)
        assert main([root, "--profile", "relaxed"]) == 0
        assert main([root, "--profile", "strict"]) == 1
        capsys.readouterr()

    def test_relaxed_still_enforces_illegal_transitions(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_MACHINE), "--profile", "relaxed"])
        assert code == 1, capsys.readouterr().out


class TestSuppressions:
    def test_disable_next_silences(self, tmp_path, capsys):
        suppressed = BAD_MACHINE.replace(
            "            self.phase = Phase.DONE",
            "            # justified: recovery path revalidates the log\n"
            "            # repro-proto: disable-next=illegal-transition\n"
            "            self.phase = Phase.DONE",
        )
        code = main([_write(tmp_path, suppressed), "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_other_tools_comments_do_not_silence(self, tmp_path, capsys):
        not_ours = BAD_MACHINE.replace(
            "            self.phase = Phase.DONE",
            "            # repro-lint: disable-next=illegal-transition\n"
            "            # repro-bounds: disable-next=illegal-transition\n"
            "            self.phase = Phase.DONE",
        )
        code = main([_write(tmp_path, not_ours), "--profile", "strict"])
        assert code == 1, capsys.readouterr().out


class TestDeclarations:
    #: The ``__protocol__`` tuple form binds a *field* protocol whose
    #: states are plain module-level constants.
    DOOR = '''\
OPENED = "opened"
SHUT = "shut"
LOCKED = "locked"


class Metrics:
    def inc(self, name):
        pass


class Door:
    __protocol__ = ("state", "OPENED->SHUT", "SHUT->OPENED", "SHUT->LOCKED")

    def __init__(self):
        self.state = OPENED
        self.metrics = Metrics()

    def lock(self):
        self.state = LOCKED
        self.metrics.inc("door.locked")
'''

    def test_decorator_form_is_read(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_MACHINE), "--profile", "strict"])
        out = capsys.readouterr().out
        assert code == 1
        assert "Phase" in out

    def test_dunder_tuple_form_is_read(self, tmp_path, capsys):
        code = main([_write(tmp_path, self.DOOR), "--profile", "strict"])
        out = capsys.readouterr().out
        assert code == 1
        assert "unguarded-transition" in out
        assert "{OPENED}" in out


class TestOutputFormats:
    def test_github_annotations(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_MACHINE), "--profile", "strict",
                     "--format", "github"])
        out = capsys.readouterr().out
        assert code == 1
        assert "::error " in out
        assert "title=repro-proto%3A illegal-transition" in out

    def test_quiet_drops_summary(self, tmp_path, capsys):
        main([_write(tmp_path, CLEAN_MACHINE), "--profile", "strict", "-q"])
        assert capsys.readouterr().out == ""


class TestProtocolReport:
    def test_report_lists_protocols_bindings_and_sites(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_MACHINE), "--report", "protocols"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Phase" in out
        assert "Machine.phase" in out
        assert "write" in out
        assert "init" in out


class TestHelperIndirection:
    """State written through a helper is judged at each *call site* with
    the caller's narrowed state -- the flow call graph supplies the
    edges."""

    HELPER = STUBS + '''\
@protocol("A->B", "B->C")
class St(Enum):
    A = "a"
    B = "b"
    C = "c"


class M:
    def __init__(self):
        self.st = St.A
        self.metrics = Metrics()

    def _finish(self):
        self.st = St.C
        self.metrics.inc("m.finished")

    def shutdown(self):
        if self.st is St.A:
            self._finish()
            self.metrics.inc("m.shutdown")
'''

    def test_illegal_helper_write_lands_on_the_call_site(self, tmp_path, capsys):
        code = main([_write(tmp_path, self.HELPER), "--profile", "strict"])
        out = capsys.readouterr().out
        assert code == 1
        call_line = self.HELPER.splitlines().index(
            "            self._finish()") + 1
        finding_lines = [
            line for line in out.splitlines()
            if " illegal-transition: " in line
        ]
        assert len(finding_lines) == 1, out
        assert f"mod.py:{call_line}:" in finding_lines[0]
        assert "_finish()" in finding_lines[0]
        assert "{A}->C" in finding_lines[0]

    def test_guarded_callers_make_the_helper_clean(self, tmp_path, capsys):
        guarded = self.HELPER.replace(
            "if self.st is St.A:",
            "if self.st is St.B:",
        )
        code = main([_write(tmp_path, guarded), "--profile", "strict"])
        assert code == 0, capsys.readouterr().out


@pytest.mark.parametrize("flag", ["--profile", "--format", "--report"])
def test_bad_flag_values_exit_two(tmp_path, flag, capsys):
    with pytest.raises(SystemExit) as exc_info:
        main([str(tmp_path), flag, "bogus-value"])
    capsys.readouterr()
    assert exc_info.value.code == 2
