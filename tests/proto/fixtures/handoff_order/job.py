"""Out-of-order handoff events: every transition is declared (so no
illegal/unguarded findings), but the declared order LOAD -> RUN -> FLUSH
is violated by touching RUN after FLUSH in one function."""


def protocol(*transitions, field=None, order=()):
    def mark(cls):
        return cls
    return mark


class Enum:
    pass


class Metrics:
    def inc(self, name):
        pass


@protocol(
    "LOAD->RUN", "LOAD->FLUSH", "RUN->LOAD", "RUN->FLUSH",
    "FLUSH->LOAD", "FLUSH->RUN",
    order=("LOAD", "RUN", "FLUSH"),
)
class Stage(Enum):
    LOAD = "load"
    RUN = "run"
    FLUSH = "flush"


class Job:
    def __init__(self):
        self.stage = Stage.LOAD
        self.metrics = Metrics()

    def run_all(self):
        self.stage = Stage.LOAD
        self.metrics.inc("job.staged")
        self.stage = Stage.FLUSH
        # BUG: RUN after FLUSH inverts the declared handoff order.
        self.stage = Stage.RUN
