"""A guarded write whose guard still admits an undeclared source:
``finish`` excludes DONE but not IDLE, so the IDLE->DONE path (never
declared) survives the guard."""


def protocol(*transitions, field=None, order=()):
    def mark(cls):
        return cls
    return mark


class Enum:
    pass


class Metrics:
    def inc(self, name):
        pass


@protocol("IDLE->RUNNING", "RUNNING->DONE")
class Phase(Enum):
    IDLE = "idle"
    RUNNING = "running"
    DONE = "done"


class Machine:
    def __init__(self):
        self.phase = Phase.IDLE
        self.metrics = Metrics()

    def start(self):
        if self.phase is Phase.IDLE:
            self.phase = Phase.RUNNING
            self.metrics.inc("machine.started")

    def finish(self):
        # BUG: "not DONE yet" admits IDLE, and IDLE->DONE is undeclared.
        if self.phase is not Phase.DONE:
            self.phase = Phase.DONE
            self.metrics.inc("machine.finished")
