"""An unguarded write with a forbidden in-edge: ``close`` stores CLOSED
without checking the current state, and NEW->CLOSED is undeclared."""


def protocol(*transitions, field=None, order=()):
    def mark(cls):
        return cls
    return mark


class Enum:
    pass


class Metrics:
    def inc(self, name):
        pass


@protocol("NEW->READY", "READY->CLOSED")
class ConnState(Enum):
    NEW = "new"
    READY = "ready"
    CLOSED = "closed"


class Conn:
    def __init__(self):
        self.state = ConnState.NEW
        self.metrics = Metrics()

    def handshake(self):
        if self.state is ConnState.NEW:
            self.state = ConnState.READY
            self.metrics.inc("conn.ready")

    def close(self):
        # BUG: no guard -- a NEW connection would run the undeclared
        # NEW->CLOSED transition.
        self.state = ConnState.CLOSED
        self.metrics.inc("conn.closed")
