"""The protocol and its owning class: Boiler.heat carries Heat."""


def protocol(*transitions, field=None, order=()):
    def mark(cls):
        return cls
    return mark


class Enum:
    pass


class Metrics:
    def inc(self, name):
        pass


@protocol("COLD->WARM", "WARM->HOT", "HOT->COLD")
class Heat(Enum):
    COLD = "cold"
    WARM = "warm"
    HOT = "hot"


class Boiler:
    def __init__(self):
        self.heat = Heat.COLD
        self.metrics = Metrics()

    def warm_up(self):
        if self.heat is Heat.COLD:
            self.heat = Heat.WARM
            self.metrics.inc("boiler.warming")
