"""A different module reaching into Boiler's state field directly.
The write is guarded and legal -- but it belongs in an owner-class
method, not here."""

from owner import Heat, Metrics


class ControlPanel:
    def __init__(self):
        self.metrics = Metrics()

    def push_warm(self, boiler):
        # BUG: mutates Boiler.heat from outside its owner module.
        if boiler.heat is Heat.COLD:
            boiler.heat = Heat.WARM
            self.metrics.inc("panel.pushed")
