"""A guarded, legal transition that emits nothing: no metrics, no
tracing, no log -- invisible state changes (strict profile only)."""


def protocol(*transitions, field=None, order=()):
    def mark(cls):
        return cls
    return mark


class Enum:
    pass


@protocol("OFF->ON", "ON->OFF")
class Power(Enum):
    OFF = "off"
    ON = "on"


class Switch:
    def __init__(self):
        self.power = Power.OFF

    def turn_on(self):
        # BUG: legal and guarded, but nothing observable records it.
        if self.power is Power.OFF:
            self.power = Power.ON
