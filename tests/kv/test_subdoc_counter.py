"""Tests for counters and the sub-document API (lookup_in / mutate_in),
the SDK-level expression of section 3.2.2's sub-document operations."""

import pytest

from repro import Cluster
from repro.common.errors import (
    CasMismatchError,
    KeyNotFoundError,
    TemporaryFailureError,
)


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=2, vbuckets=16)
    cluster.create_bucket("b", replicas=0)
    return cluster


@pytest.fixture
def client(cluster):
    return cluster.connect()


class TestCounter:
    def test_create_with_initial(self, client):
        value, result = client.counter("b", "hits", 1, initial=0)
        assert value == 0
        assert result.cas > 0

    def test_increment(self, client):
        client.counter("b", "hits", 1, initial=0)
        value, _ = client.counter("b", "hits", 5)
        assert value == 5
        value, _ = client.counter("b", "hits", 1)
        assert value == 6

    def test_decrement(self, client):
        client.counter("b", "credits", 0, initial=100)
        value, _ = client.counter("b", "credits", -30)
        assert value == 70

    def test_missing_without_initial(self, client):
        with pytest.raises(KeyNotFoundError):
            client.counter("b", "ghost", 1)

    def test_non_integer_target(self, client):
        client.upsert("b", "doc", {"not": "a counter"})
        with pytest.raises(TemporaryFailureError):
            client.counter("b", "doc", 1)

    def test_counter_is_a_real_document(self, client):
        client.counter("b", "hits", 1, initial=41)
        client.counter("b", "hits", 1)
        assert client.get("b", "hits").value == 42


class TestLookupIn:
    def test_multiple_paths(self, client):
        client.upsert("b", "user", {
            "name": "dipti",
            "address": {"city": "SF", "zip": "94040"},
            "tags": ["a", "b"],
        })
        results = client.lookup_in("b", "user",
                                   ["name", "address.zip", "tags.1", "ghost"])
        assert results[0] == {"found": True, "value": "dipti"}
        assert results[1] == {"found": True, "value": "94040"}
        assert results[2] == {"found": True, "value": "b"}
        assert results[3] == {"found": False, "value": None}

    def test_missing_document(self, client):
        with pytest.raises(KeyNotFoundError):
            client.lookup_in("b", "ghost", ["x"])


class TestMutateIn:
    def test_set_paths(self, client):
        client.upsert("b", "user", {"name": "x"})
        client.mutate_in("b", "user", [
            ("set", "age", 30),
            ("set", "address.city", "SF"),
        ])
        value = client.get("b", "user").value
        assert value == {"name": "x", "age": 30, "address": {"city": "SF"}}

    def test_unset(self, client):
        client.upsert("b", "user", {"name": "x", "temp": 1})
        client.mutate_in("b", "user", [("unset", "temp", None)])
        assert client.get("b", "user").value == {"name": "x"}

    def test_array_append(self, client):
        client.upsert("b", "user", {"tags": ["a"]})
        client.mutate_in("b", "user", [("array_append", "tags", "b")])
        assert client.get("b", "user").value["tags"] == ["a", "b"]

    def test_array_append_non_array(self, client):
        client.upsert("b", "user", {"tags": "nope"})
        with pytest.raises(TemporaryFailureError):
            client.mutate_in("b", "user", [("array_append", "tags", "b")])

    def test_batch_is_atomic(self, client):
        """A failing op must leave the document untouched."""
        client.upsert("b", "user", {"a": 1, "arr": "not-an-array"})
        with pytest.raises(TemporaryFailureError):
            client.mutate_in("b", "user", [
                ("set", "a", 2),
                ("array_append", "arr", 1),  # fails
            ])
        assert client.get("b", "user").value["a"] == 1

    def test_cas_protected(self, client):
        result = client.upsert("b", "user", {"a": 1})
        client.upsert("b", "user", {"a": 2})  # bump CAS
        with pytest.raises(CasMismatchError):
            client.mutate_in("b", "user", [("set", "a", 3)], cas=result.cas)

    def test_preserves_expiry(self, cluster, client):
        now = cluster.clock.now()
        client.upsert("b", "session", {"n": 1}, expiry=now + 100)
        client.mutate_in("b", "session", [("set", "n", 2)])
        cluster.tick(200)
        with pytest.raises(KeyNotFoundError):
            client.get("b", "session")

    def test_unknown_op(self, client):
        client.upsert("b", "user", {"a": 1})
        with pytest.raises(ValueError):
            client.mutate_in("b", "user", [("swizzle", "a", 1)])

    def test_mutation_flows_to_indexes(self, cluster, client):
        cluster.query("CREATE INDEX by_age ON b(age) USING GSI")
        client.upsert("b", "user", {"name": "x"})
        client.mutate_in("b", "user", [("set", "age", 33)])
        rows = cluster.gsi.scan("by_age", low=[33], high=[33],
                                scan_consistency="request_plus")
        assert [doc_id for _k, doc_id in rows] == ["user"]
