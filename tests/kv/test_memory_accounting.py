"""The incrementally-maintained bucket-wide memory counter.

``KVEngine.memory_used()`` is an O(1) counter fed by hash-table charge
callbacks; the seed re-summed every vBucket's usage inside the item
pager's inner loop (O(n^2) per pager run).  These tests assert the
counter equals the ground-truth full re-summation
(``memory_used_full()``) after every kind of mutation the engine can
apply to its hash tables."""

import pytest

from repro.common.clock import VirtualClock
from repro.kv.engine import KVEngine, VBucketState

VBUCKETS = range(4)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def engine(clock):
    eng = KVEngine("node1", "default", clock=clock,
                   quota_bytes=64 * 1024)
    for vb in VBUCKETS:
        eng.create_vbucket(vb)
    return eng


def check(engine):
    assert engine.memory_used() == engine.memory_used_full()


def fill(engine, count=40, size=256, prefix="k"):
    for i in range(count):
        engine.upsert(i % len(VBUCKETS), f"{prefix}{i}", "v" * size)
        if i % 10 == 9:
            # Keep dirty data bounded so the pager always has clean
            # entries to eject instead of tripping the quota.
            engine.flush()


class TestCounterTracksGroundTruth:
    def test_upsert_replace_delete(self, engine):
        check(engine)
        fill(engine)
        check(engine)
        # Replacements with different sizes adjust by the delta.
        engine.upsert(0, "k0", "v" * 2048)
        engine.upsert(0, "k4", "v")
        check(engine)
        engine.delete(1, "k1")
        engine.counter(2, "c", 5, initial=5)
        check(engine)
        assert engine.memory_used() > 0

    def test_pager_ejection_and_bg_fetch(self, engine):
        fill(engine, count=120, size=512)
        engine.flush()  # persist so entries are clean and ejectable
        before = engine.memory_used()
        assert engine.run_item_pager() > 0
        check(engine)
        assert engine.memory_used() < before
        # A read of an ejected value background-fetches it, re-charging
        # exactly the value's footprint.
        victim = next(
            key
            for vb in VBUCKETS
            for key, entry in engine.vbuckets[vb].hashtable.items()
            if entry.doc.ejected
            for key in [key]
        )
        vb = next(v for v in VBUCKETS
                  if engine.vbuckets[v].hashtable.peek(victim) is not None)
        assert engine.get(vb, victim).value == "v" * 512
        check(engine)

    def test_expiry_pager(self, engine, clock):
        for i in range(16):
            engine.upsert(i % len(VBUCKETS), f"e{i}", "v" * 128,
                          expiry=clock.now() + 1.0)
        check(engine)
        clock.advance(2.0)
        assert engine.run_expiry_pager() == 16
        check(engine)

    def test_compaction_and_tombstone_trim(self, engine):
        fill(engine)
        for i in range(20):
            engine.delete(i % len(VBUCKETS), f"k{i}")
        engine.flush()
        engine.run_compactor(threshold=0.0)
        check(engine)

    def test_drop_vbucket_releases_its_share(self, engine):
        fill(engine)
        share = engine.vbuckets[0].hashtable.memory_used
        assert share > 0
        engine.drop_vbucket(0)
        check(engine)
        # And the detached hash table no longer feeds the counter.
        before = engine.memory_used()
        engine.drop_vbucket(0)  # idempotent
        assert engine.memory_used() == before

    def test_replica_and_state_changes(self, engine):
        engine.create_vbucket(99, VBucketState.REPLICA)
        fill(engine)
        engine.set_vbucket_state(99, VBucketState.ACTIVE)
        engine.upsert(99, "promoted", "v" * 64)
        check(engine)


class TestWarmupAndFullEviction:
    def test_warmup_rebuild_matches_full_sum(self, engine, clock):
        fill(engine, count=80, size=1024)
        engine.flush()
        restarted = KVEngine("node1", "default", disk=engine.disk,
                             clock=clock, quota_bytes=64 * 1024)
        for vb in VBUCKETS:
            restarted.create_vbucket(vb)
        assert restarted.warmup() > 0
        check(restarted)
        # Warmup under a quota ran the pager; the counter respected the
        # low watermark using the incremental value.
        assert restarted.memory_used() \
            <= restarted.quota_bytes * restarted.HIGH_WATERMARK

    def test_full_eviction_policy(self, clock):
        engine = KVEngine("node1", "default", clock=clock,
                          quota_bytes=32 * 1024, eviction_policy="full")
        engine.create_vbucket(0)
        for i in range(60):
            engine.upsert(0, f"f{i}", "v" * 512)
            if i % 10 == 9:
                engine.flush()
        engine.flush()
        engine.run_item_pager()
        check(engine)
        # Full eviction drops whole entries; a get re-loads from disk.
        assert engine.get(0, "f0").value == "v" * 512
        check(engine)
