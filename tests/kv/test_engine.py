"""Tests for the KV engine: memory-first writes, CAS, locks, expiry,
asynchronous persistence, eviction, and vBucket state handling."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import (
    CasMismatchError,
    DocumentLockedError,
    KeyExistsError,
    KeyNotFoundError,
    NotMyVBucketError,
    TemporaryFailureError,
    ValueTooLargeError,
)
from repro.kv.engine import KVEngine, VBucketState

VB = 0


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def engine(clock):
    eng = KVEngine("node1", "default", clock=clock)
    eng.create_vbucket(VB)
    return eng


class TestBasicOps:
    def test_upsert_and_get(self, engine):
        result = engine.upsert(VB, "k", {"a": 1})
        doc = engine.get(VB, "k")
        assert doc.value == {"a": 1}
        assert doc.meta.cas == result.cas
        assert result.seqno == 1

    def test_get_missing(self, engine):
        with pytest.raises(KeyNotFoundError):
            engine.get(VB, "ghost")

    def test_upsert_replaces_and_bumps_everything(self, engine):
        first = engine.upsert(VB, "k", 1)
        second = engine.upsert(VB, "k", 2)
        assert second.cas > first.cas
        assert second.seqno == first.seqno + 1
        doc = engine.get(VB, "k")
        assert doc.value == 2
        assert doc.meta.rev == 2

    def test_insert_fails_on_existing(self, engine):
        engine.insert(VB, "k", 1)
        with pytest.raises(KeyExistsError):
            engine.insert(VB, "k", 2)

    def test_insert_after_delete_ok(self, engine):
        engine.insert(VB, "k", 1)
        engine.delete(VB, "k")
        result = engine.insert(VB, "k", 2)
        assert engine.get(VB, "k").value == 2
        # Revision history continues across the tombstone (XDCR counts
        # total updates).
        assert engine.get(VB, "k").meta.rev == 3
        assert result.seqno == 3

    def test_replace_requires_existing(self, engine):
        with pytest.raises(KeyNotFoundError):
            engine.replace(VB, "k", 1)
        engine.upsert(VB, "k", 1)
        engine.replace(VB, "k", 2)
        assert engine.get(VB, "k").value == 2

    def test_delete(self, engine):
        engine.upsert(VB, "k", 1)
        engine.delete(VB, "k")
        with pytest.raises(KeyNotFoundError):
            engine.get(VB, "k")

    def test_delete_missing(self, engine):
        with pytest.raises(KeyNotFoundError):
            engine.delete(VB, "ghost")

    def test_value_is_deep_copied(self, engine):
        value = {"nested": [1, 2]}
        engine.upsert(VB, "k", value)
        value["nested"].append(3)
        assert engine.get(VB, "k").value == {"nested": [1, 2]}
        engine.get(VB, "k").value["nested"].append(99)
        assert engine.get(VB, "k").value == {"nested": [1, 2]}

    def test_non_json_value_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.upsert(VB, "k", object())

    def test_oversized_value_rejected(self, engine):
        engine.MAX_VALUE_SIZE = 100
        with pytest.raises(ValueTooLargeError):
            engine.upsert(VB, "k", "x" * 200)

    def test_flags_roundtrip(self, engine):
        engine.upsert(VB, "k", 1, flags=0xDEAD)
        assert engine.get(VB, "k").meta.flags == 0xDEAD


class TestCas:
    def test_cas_zero_means_unconditional(self, engine):
        engine.upsert(VB, "k", 1)
        engine.upsert(VB, "k", 2, cas=0)
        assert engine.get(VB, "k").value == 2

    def test_matching_cas_succeeds(self, engine):
        result = engine.upsert(VB, "k", 1)
        engine.upsert(VB, "k", 2, cas=result.cas)
        assert engine.get(VB, "k").value == 2

    def test_stale_cas_fails(self, engine):
        """The paper's optimistic-locking walkthrough (section 3.1.1)."""
        original = engine.upsert(VB, "k", {"v": 1})
        engine.upsert(VB, "k", {"v": 2})  # concurrent writer wins
        with pytest.raises(CasMismatchError):
            engine.upsert(VB, "k", {"v": 3}, cas=original.cas)
        # Re-read and retry, as the paper prescribes.
        fresh = engine.get(VB, "k")
        engine.upsert(VB, "k", {"v": 3}, cas=fresh.meta.cas)
        assert engine.get(VB, "k").value == {"v": 3}

    def test_cas_on_delete(self, engine):
        result = engine.upsert(VB, "k", 1)
        engine.upsert(VB, "k", 2)
        with pytest.raises(CasMismatchError):
            engine.delete(VB, "k", cas=result.cas)

    def test_cas_strictly_increases(self, engine):
        previous = 0
        for i in range(50):
            result = engine.upsert(VB, f"k{i}", i)
            assert result.cas > previous
            previous = result.cas


class TestLocks:
    def test_lock_blocks_other_writers(self, engine, clock):
        engine.upsert(VB, "k", 1)
        engine.get_and_lock(VB, "k")
        with pytest.raises(DocumentLockedError):
            engine.upsert(VB, "k", 2)

    def test_lock_holder_writes_with_lock_cas(self, engine):
        engine.upsert(VB, "k", 1)
        locked = engine.get_and_lock(VB, "k")
        engine.upsert(VB, "k", 2, cas=locked.meta.cas)
        assert engine.get(VB, "k").value == 2

    def test_mutation_releases_lock(self, engine):
        engine.upsert(VB, "k", 1)
        locked = engine.get_and_lock(VB, "k")
        engine.upsert(VB, "k", 2, cas=locked.meta.cas)
        engine.upsert(VB, "k", 3)  # no lock anymore
        assert engine.get(VB, "k").value == 3

    def test_lock_times_out(self, engine, clock):
        """Locks auto-release to avoid deadlocks (section 3.1.1)."""
        engine.upsert(VB, "k", 1)
        engine.get_and_lock(VB, "k", lock_time=5.0)
        clock.advance(6.0)
        engine.upsert(VB, "k", 2)
        assert engine.get(VB, "k").value == 2

    def test_double_lock_fails(self, engine):
        engine.upsert(VB, "k", 1)
        engine.get_and_lock(VB, "k")
        with pytest.raises(DocumentLockedError):
            engine.get_and_lock(VB, "k")

    def test_unlock(self, engine):
        engine.upsert(VB, "k", 1)
        locked = engine.get_and_lock(VB, "k")
        engine.unlock(VB, "k", locked.meta.cas)
        engine.upsert(VB, "k", 2)

    def test_unlock_wrong_cas(self, engine):
        engine.upsert(VB, "k", 1)
        engine.get_and_lock(VB, "k")
        with pytest.raises(DocumentLockedError):
            engine.unlock(VB, "k", 999999)

    def test_unlock_unlocked_key(self, engine):
        engine.upsert(VB, "k", 1)
        with pytest.raises(TemporaryFailureError):
            engine.unlock(VB, "k", 1)

    def test_lock_missing_key(self, engine):
        with pytest.raises(KeyNotFoundError):
            engine.get_and_lock(VB, "ghost")


class TestExpiry:
    def test_expired_doc_is_gone(self, engine, clock):
        engine.upsert(VB, "k", 1, expiry=10.0)
        clock.advance(11.0)
        with pytest.raises(KeyNotFoundError):
            engine.get(VB, "k")

    def test_not_yet_expired(self, engine, clock):
        engine.upsert(VB, "k", 1, expiry=10.0)
        clock.advance(5.0)
        assert engine.get(VB, "k").value == 1

    def test_expiry_generates_delete_mutation(self, engine, clock):
        engine.upsert(VB, "k", 1, expiry=10.0)
        clock.advance(11.0)
        with pytest.raises(KeyNotFoundError):
            engine.get(VB, "k")
        vb = engine.vbuckets[VB]
        assert vb.change_buffer[-1].meta.deleted
        assert engine.metrics.counter_value("kv.expirations") == 1

    def test_touch_extends_life(self, engine, clock):
        engine.upsert(VB, "k", 1, expiry=10.0)
        clock.advance(5.0)
        engine.touch(VB, "k", expiry=clock.now() + 100.0)
        clock.advance(50.0)
        assert engine.get(VB, "k").value == 1

    def test_zero_expiry_lives_forever(self, engine, clock):
        engine.upsert(VB, "k", 1)
        clock.advance(1e9)
        assert engine.get(VB, "k").value == 1


class TestVBucketOwnership:
    def test_non_owned_vbucket_rejected(self, engine):
        with pytest.raises(NotMyVBucketError):
            engine.get(7, "k")

    def test_replica_rejects_client_ops(self, engine):
        engine.create_vbucket(1, VBucketState.REPLICA)
        with pytest.raises(NotMyVBucketError):
            engine.upsert(1, "k", 1)
        with pytest.raises(NotMyVBucketError):
            engine.get(1, "k")

    def test_dead_vbucket_rejected(self, engine):
        engine.set_vbucket_state(VB, VBucketState.DEAD)
        with pytest.raises(NotMyVBucketError):
            engine.get(VB, "k")

    def test_promotion_appends_failover_log(self, engine):
        engine.create_vbucket(1, VBucketState.REPLICA)
        vb = engine.vbuckets[1]
        branches_before = len(vb.failover_log)
        engine.set_vbucket_state(1, VBucketState.ACTIVE)
        assert vb.state is VBucketState.ACTIVE
        assert len(vb.failover_log) == branches_before + 1

    def test_promotion_continues_cas_monotonically(self, engine):
        engine.upsert(VB, "k", 1)
        doc = engine.get(VB, "k")
        other = KVEngine("node2", "default")
        other.create_vbucket(VB, VBucketState.REPLICA)
        other.apply_replicated(VB, doc)
        other.set_vbucket_state(VB, VBucketState.ACTIVE)
        result = other.upsert(VB, "k", 2)
        assert result.cas > doc.meta.cas


class TestReplicaApply:
    def test_replica_applies_and_tracks_seqno(self, engine):
        engine.upsert(VB, "k", {"v": 1})
        doc = engine.get(VB, "k")
        replica = KVEngine("node2", "default")
        replica.create_vbucket(VB, VBucketState.REPLICA)
        replica.apply_replicated(VB, doc)
        assert replica.vbuckets[VB].high_seqno == doc.meta.seqno
        entry = replica.vbuckets[VB].hashtable.peek("k")
        assert entry.doc.value == {"v": 1}

    def test_active_rejects_replication(self, engine):
        doc = None
        engine.upsert(VB, "k", 1)
        doc = engine.get(VB, "k")
        with pytest.raises(NotMyVBucketError):
            engine.apply_replicated(VB, doc)


class TestPersistence:
    def test_writes_are_async(self, engine):
        engine.upsert(VB, "k", 1)
        assert engine.pending_writes() == 1
        assert not engine.vbuckets[VB].store.contains("k")

    def test_flush_persists(self, engine):
        engine.upsert(VB, "k", {"v": 1})
        assert engine.flush()
        assert engine.pending_writes() == 0
        assert engine.vbuckets[VB].store.get("k").value == {"v": 1}
        assert engine.vbuckets[VB].persisted_seqno == 1

    def test_flush_idle_returns_false(self, engine):
        assert not engine.flush()

    def test_observe_persistence_transition(self, engine):
        result = engine.upsert(VB, "k", 1)
        assert not engine.observe(VB, "k").persisted
        engine.flush()
        observed = engine.observe(VB, "k")
        assert observed.persisted
        assert observed.cas == result.cas

    def test_observe_on_replica(self, engine):
        engine.upsert(VB, "k", 1)
        doc = engine.get(VB, "k")
        replica = KVEngine("node2", "default")
        replica.create_vbucket(VB, VBucketState.REPLICA)
        replica.apply_replicated(VB, doc)
        observed = replica.observe(VB, "k")
        assert observed.exists and not observed.persisted
        replica.flush()
        assert replica.observe(VB, "k").persisted

    def test_flush_batch_limit(self, engine):
        for i in range(10):
            engine.upsert(VB, f"k{i}", i)
        engine.flush(max_batch=4)
        assert engine.pending_writes() == 6

    def test_crash_recovery_to_last_flush(self, engine):
        engine.upsert(VB, "a", 1)
        engine.flush()
        engine.upsert(VB, "b", 2)  # never flushed
        engine.disk.crash()

        recovered = KVEngine("node1", "default", disk=engine.disk)
        recovered.create_vbucket(VB)
        vb = recovered.vbuckets[VB]
        assert vb.store.contains("a")
        assert not vb.store.contains("b")
        assert vb.high_seqno == 1


class TestEviction:
    def make_full_engine(self, policy="value"):
        engine = KVEngine(
            "node1", "default", quota_bytes=60_000, eviction_policy=policy,
        )
        engine.create_vbucket(VB)
        return engine

    def test_pager_ejects_clean_values(self):
        engine = self.make_full_engine()
        for i in range(100):
            engine.upsert(VB, f"k{i}", {"pad": "x" * 400})
            engine.flush()
        vb = engine.vbuckets[VB]
        assert vb.hashtable.resident_ratio() < 1.0
        assert engine.metrics.counter_value("kv.evictions") > 0

    def test_value_eviction_keeps_metadata(self):
        engine = self.make_full_engine("value")
        for i in range(100):
            engine.upsert(VB, f"k{i}", {"pad": "x" * 400})
            engine.flush()
        # Every key's metadata is still resident under value eviction.
        assert len(engine.vbuckets[VB].hashtable) == 100

    def test_full_eviction_drops_entries(self):
        engine = self.make_full_engine("full")
        for i in range(100):
            engine.upsert(VB, f"k{i}", {"pad": "x" * 400})
            engine.flush()
        assert len(engine.vbuckets[VB].hashtable) < 100

    def test_ejected_value_refetched_on_get(self):
        engine = self.make_full_engine()
        for i in range(100):
            engine.upsert(VB, f"k{i}", {"i": i, "pad": "x" * 400})
            engine.flush()
        for i in range(100):
            assert engine.get(VB, f"k{i}").value["i"] == i
        assert engine.metrics.counter_value("kv.bg_fetches") > 0

    def test_full_eviction_get_reloads_from_disk(self):
        engine = self.make_full_engine("full")
        for i in range(100):
            engine.upsert(VB, f"k{i}", {"i": i, "pad": "x" * 400})
            engine.flush()
        for i in range(100):
            assert engine.get(VB, f"k{i}").value["i"] == i

    def test_dirty_items_never_ejected(self):
        engine = KVEngine("node1", "default", quota_bytes=20_000)
        engine.create_vbucket(VB)
        # Without flushing, everything is dirty; the pager can free
        # nothing and the engine must push back.
        with pytest.raises(TemporaryFailureError):
            for i in range(200):
                engine.upsert(VB, f"k{i}", {"pad": "x" * 400})
        # After the flusher runs, writes can proceed.
        engine.flush()
        engine.upsert(VB, "post-flush", {"pad": "x" * 400})

    def test_unlimited_quota_never_evicts(self, engine):
        for i in range(200):
            engine.upsert(VB, f"k{i}", {"pad": "x" * 400})
        assert engine.vbuckets[VB].hashtable.resident_ratio() == 1.0


class TestQueueDepthBackpressure:
    """The TMPFAIL ``retry_after`` hint is derived from the real flusher
    backlog and memory overshoot -- a deeply-behind data path asks
    clients to stay away longer -- and queue depth is published as the
    ``kv.queue_depth`` histogram."""

    def provoke(self, quota, pad):
        engine = KVEngine("node1", "default", quota_bytes=quota)
        engine.create_vbucket(VB)
        with pytest.raises(TemporaryFailureError) as exc_info:
            for i in range(10_000):
                engine.upsert(VB, f"k{i}", {"pad": "x" * pad})
        return engine, exc_info.value

    def test_retry_hint_reflects_backlog_and_overshoot(self):
        engine, err = self.provoke(quota=200_000, pad=16)
        assert err.pending_writes == engine.pending_writes()
        assert err.pending_writes > engine.FLUSH_BATCH
        assert err.memory_ratio > engine.HIGH_WATERMARK
        expected = (engine.TMPFAIL_RETRY_QUANTUM
                    * (1 + err.pending_writes // engine.FLUSH_BATCH)
                    * max(1.0, err.memory_ratio))
        assert err.retry_after == pytest.approx(expected)
        # Backlog past one flusher batch means more than the base quantum.
        assert err.retry_after > engine.TMPFAIL_RETRY_QUANTUM

    def test_deeper_backlog_asks_for_longer_relief(self):
        _, shallow = self.provoke(quota=20_000, pad=400)  # few large docs
        _, deep = self.provoke(quota=200_000, pad=16)     # many small docs
        assert shallow.pending_writes < deep.pending_writes
        assert shallow.retry_after < deep.retry_after

    def test_queue_depth_metric_is_observed(self):
        engine, err = self.provoke(quota=20_000, pad=400)
        depth = engine.metrics.histograms["kv.queue_depth"]
        assert depth.count >= 1
        assert depth.max >= err.pending_writes
        before = depth.count
        engine.flush()
        assert depth.count == before + 1


class TestChangeBuffer:
    def test_mutations_recorded_in_order(self, engine):
        engine.upsert(VB, "a", 1)
        engine.upsert(VB, "b", 2)
        engine.delete(VB, "a")
        buffer = engine.vbuckets[VB].change_buffer
        assert [(d.key, d.meta.deleted) for d in buffer] == [
            ("a", False), ("b", False), ("a", True),
        ]
        assert [d.meta.seqno for d in buffer] == [1, 2, 3]

    def test_trim_keeps_unpersisted(self, engine):
        engine.vbuckets[VB].MAX_BUFFER = 10
        for i in range(5):
            engine.upsert(VB, f"k{i}", i)
        engine.flush()
        engine.upsert(VB, "late", 1)
        vb = engine.vbuckets[VB]
        vb.trim_change_buffer()
        assert [d.key for d in vb.change_buffer] == ["late"]
        assert vb.buffer_start_seqno == 5

    def test_listeners_invoked(self, engine):
        heard = []
        engine.mutation_listeners.append(lambda d: heard.append(d.key))
        engine.upsert(VB, "x", 1)
        assert heard == ["x"]


class TestStats:
    def test_stats_shape(self, engine):
        engine.upsert(VB, "k", 1)
        stats = engine.stats()
        assert stats["items"] == 1
        assert stats["pending_writes"] == 1
        assert stats["vbuckets"]["active"] == 1

    def test_docs_in_vbucket(self, engine):
        engine.upsert(VB, "a", 1)
        engine.upsert(VB, "b", 2)
        engine.delete(VB, "a")
        docs = list(engine.docs_in_vbucket(VB))
        assert [d.key for d in docs] == ["b"]
