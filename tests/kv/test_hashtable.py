"""Direct unit tests for the per-vBucket hash table: NRU tracking,
memory accounting, and ejection rules."""


from repro.common.document import Document, DocumentMeta
from repro.kv.hashtable import HashTable


def make_doc(key="k", value=None, seqno=1, deleted=False):
    return Document(
        DocumentMeta(key=key, cas=seqno, seqno=seqno, rev=1, deleted=deleted),
        value if not deleted else None,
    )


class TestBasics:
    def test_set_and_get(self):
        table = HashTable(0)
        table.set(make_doc("a", {"x": 1}), dirty=True)
        assert "a" in table
        assert table.get("a").doc.value == {"x": 1}
        assert len(table) == 1

    def test_get_missing(self):
        assert HashTable(0).get("ghost") is None

    def test_remove(self):
        table = HashTable(0)
        table.set(make_doc("a", 1), dirty=False)
        table.remove("a")
        assert "a" not in table
        assert table.memory_used == 0

    def test_remove_missing_is_noop(self):
        HashTable(0).remove("ghost")

    def test_clear(self):
        table = HashTable(0)
        table.set(make_doc("a", 1), dirty=False)
        table.clear()
        assert len(table) == 0
        assert table.memory_used == 0


class TestNru:
    def test_get_sets_reference_bit(self):
        table = HashTable(0)
        entry = table.set(make_doc("a", 1), dirty=False)
        entry.referenced = False
        table.get("a")
        assert entry.referenced

    def test_peek_does_not_touch_reference_bit(self):
        table = HashTable(0)
        entry = table.set(make_doc("a", 1), dirty=False)
        entry.referenced = False
        table.peek("a")
        assert not entry.referenced


class TestMemoryAccounting:
    def test_grows_and_shrinks(self):
        table = HashTable(0)
        table.set(make_doc("a", "x" * 1000), dirty=False)
        big = table.memory_used
        table.set(make_doc("a", "x"), dirty=False)
        assert table.memory_used < big

    def test_replacement_does_not_leak(self):
        table = HashTable(0)
        for _ in range(10):
            table.set(make_doc("a", "x" * 100), dirty=False)
        single = HashTable(0)
        single.set(make_doc("a", "x" * 100), dirty=False)
        assert table.memory_used == single.memory_used


class TestEjection:
    def test_eject_value_keeps_metadata(self):
        table = HashTable(0)
        table.set(make_doc("a", "x" * 500, seqno=3), dirty=False)
        before = table.memory_used
        assert table.eject_value("a")
        entry = table.peek("a")
        assert entry.doc.ejected
        assert entry.doc.value is None
        assert entry.doc.meta.seqno == 3
        assert table.memory_used < before

    def test_cannot_eject_dirty(self):
        table = HashTable(0)
        table.set(make_doc("a", 1), dirty=True)
        assert not table.eject_value("a")
        assert not table.eject_entry("a")

    def test_cannot_eject_twice(self):
        table = HashTable(0)
        table.set(make_doc("a", 1), dirty=False)
        assert table.eject_value("a")
        assert not table.eject_value("a")

    def test_cannot_eject_tombstone_value(self):
        table = HashTable(0)
        table.set(make_doc("a", deleted=True), dirty=False)
        assert not table.eject_value("a")

    def test_eject_entry_removes_fully(self):
        table = HashTable(0)
        table.set(make_doc("a", 1), dirty=False)
        assert table.eject_entry("a")
        assert "a" not in table

    def test_resident_ratio(self):
        table = HashTable(0)
        assert table.resident_ratio() == 1.0
        table.set(make_doc("a", 1), dirty=False)
        table.set(make_doc("b", 2), dirty=False)
        table.eject_value("a")
        assert table.resident_ratio() == 0.5


class TestCleanMarking:
    def test_mark_clean_at_seqno(self):
        table = HashTable(0)
        table.set(make_doc("a", 1, seqno=5), dirty=True)
        table.mark_clean("a", 5)
        assert not table.peek("a").dirty

    def test_newer_mutation_stays_dirty(self):
        table = HashTable(0)
        table.set(make_doc("a", 2, seqno=7), dirty=True)
        table.mark_clean("a", 5)  # an older flush completing late
        assert table.peek("a").dirty

    def test_lock_state_survives_replacement(self):
        table = HashTable(0)
        entry = table.set(make_doc("a", 1), dirty=True)
        entry.locked_until = 99.0
        entry.lock_cas = 42
        replacement = table.set(make_doc("a", 2, seqno=2), dirty=True)
        assert replacement.locked_until == 99.0
        assert replacement.lock_cas == 42
