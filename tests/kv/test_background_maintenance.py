"""Tests for the online background maintenance of section 4.3.3:
auto-compaction past the fragmentation threshold and the expiry pager."""

import pytest

from repro import Cluster
from repro.common.errors import KeyNotFoundError
from repro.kv.engine import KVEngine, VBucketState

VB = 0


class TestEngineCompactor:
    def make_churned(self):
        engine = KVEngine("n1", "b")
        engine.create_vbucket(VB)
        for round_number in range(60):
            engine.upsert(VB, "hot", {"pad": "x" * 300, "round": round_number})
            engine.flush()
        return engine

    def test_compacts_past_threshold(self):
        engine = self.make_churned()
        store = engine.vbuckets[VB].store
        assert store.fragmentation() > 0.6
        size_before = store.file_size
        assert engine.run_compactor(threshold=0.6)
        after = engine.vbuckets[VB].store
        assert after.file_size < size_before
        assert after.get("hot").value["round"] == 59

    def test_idle_when_clean(self):
        engine = KVEngine("n1", "b")
        engine.create_vbucket(VB)
        engine.upsert(VB, "k", 1)
        engine.flush()
        assert not engine.run_compactor(threshold=0.6)

    def test_skips_vbuckets_with_dirty_queue(self):
        engine = self.make_churned()
        engine.upsert(VB, "dirty", 1)  # unflushed
        assert not engine.run_compactor(threshold=0.6)
        engine.flush()
        assert engine.run_compactor(threshold=0.6)

    def test_reads_survive_compaction(self):
        engine = self.make_churned()
        engine.run_compactor(threshold=0.5)
        assert engine.get(VB, "hot").value["round"] == 59

    def test_dcp_backfill_after_compaction(self):
        from repro.dcp.producer import DcpProducer
        engine = self.make_churned()
        engine.vbuckets[VB].trim_change_buffer()
        engine.run_compactor(threshold=0.5)
        stream = DcpProducer(engine).stream_request(VB)
        messages = []
        while True:
            batch = stream.take()
            if not batch:
                break
            messages.extend(batch)
        from repro.dcp.messages import Mutation
        mutations = [m for m in messages if isinstance(m, Mutation)]
        assert len(mutations) == 1
        assert mutations[0].doc.value["round"] == 59


class TestClusterAutoCompaction:
    def test_churn_triggers_auto_compaction(self):
        cluster = Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("b", compaction_threshold=0.5)
        client = cluster.connect()
        for round_number in range(80):
            client.upsert("b", "hot", {"pad": "y" * 400, "round": round_number})
            cluster.run_until_idle()
        compactions = sum(
            cluster.node(f"node{n}").metrics.counter_value("kv.compactions")
            for n in (1, 2)
        )
        assert compactions > 0
        assert client.get("b", "hot").value["round"] == 79

    def test_auto_compaction_disabled(self):
        cluster = Cluster(nodes=1, vbuckets=8)
        cluster.create_bucket("b", compaction_threshold=None, replicas=0)
        client = cluster.connect()
        for round_number in range(60):
            client.upsert("b", "hot", {"pad": "y" * 400, "round": round_number})
            cluster.run_until_idle()
        assert cluster.node("node1").metrics.counter_value("kv.compactions") == 0

    def test_compactor_quiesces_past_600_docs(self):
        """Regression: fragmentation once counted live B-tree nodes as
        garbage, so past ~600 docs per vBucket a freshly compacted file
        still read above the threshold and the compactor rewrote one
        vBucket every pump round -- the scheduler never went idle."""
        cluster = Cluster(nodes=1, vbuckets=4, network_latency=0.0)
        cluster.create_bucket("b", replicas=0)
        client = cluster.connect()
        for base in range(0, 800, 100):
            client.multi_upsert("b", {
                f"doc-{i}": {"i": i, "pad": "x" * 60}
                for i in range(base, base + 100)
            })
            cluster.run_until_idle()
        cluster.run_until_idle()
        # The cluster is loaded and idle: further rounds must do nothing.
        assert not cluster.scheduler.step()
        runs_when_idle = cluster.node("node1").metrics.counter_value(
            "kv.compactions")
        for _ in range(25):
            assert not cluster.scheduler.step()
        assert cluster.node("node1").metrics.counter_value(
            "kv.compactions") == runs_when_idle
        # And every file sits below the default threshold.
        engine = cluster.node("node1").engines["b"]
        for vb in engine.vbuckets.values():
            assert vb.store.fragmentation() < 0.6

    def test_replica_files_compacted_too(self):
        cluster = Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("b", compaction_threshold=0.5)
        client = cluster.connect()
        for round_number in range(80):
            client.upsert("b", "hot2", {"pad": "z" * 400, "round": round_number})
            cluster.run_until_idle()
        # Whichever node holds the replica must also have compacted.
        vb = cluster.manager.cluster_maps["b"].vbucket_for_key("hot2")
        replica = cluster.manager.cluster_maps["b"].replica_nodes(vb)[0]
        assert cluster.node(replica).metrics.counter_value("kv.compactions") > 0


class TestExpiryPagerEngine:
    def test_pager_expires_without_access(self):
        engine = KVEngine("n1", "b")
        engine.create_vbucket(VB)
        engine.upsert(VB, "short", 1, expiry=10.0)
        engine.upsert(VB, "long", 2, expiry=1000.0)
        engine.upsert(VB, "forever", 3)
        engine.clock.advance(50.0)
        assert engine.run_expiry_pager() == 1
        vb = engine.vbuckets[VB]
        assert vb.hashtable.peek("short").doc.meta.deleted
        assert not vb.hashtable.peek("long").doc.meta.deleted

    def test_pager_skips_replicas(self):
        engine = KVEngine("n1", "b")
        engine.create_vbucket(VB, VBucketState.REPLICA)
        from repro.common.document import Document, DocumentMeta
        engine.apply_replicated(VB, Document(
            DocumentMeta(key="k", cas=1, seqno=1, rev=1, expiry=1.0), {"v": 1},
        ))
        engine.clock.advance(10.0)
        assert engine.run_expiry_pager() == 0


class TestExpiryPagerCluster:
    def test_expiry_propagates_to_indexes_without_access(self):
        """The pager turns expiry into a delete mutation, so GSI entries
        disappear even if nobody ever GETs the expired key."""
        cluster = Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("b", expiry_pager_interval=30.0)
        client = cluster.connect()
        cluster.query("CREATE INDEX by_v ON b(v) USING GSI")
        now = cluster.clock.now()
        client.upsert("b", "ephemeral", {"v": 7}, expiry=now + 10.0)
        cluster.run_until_idle()
        assert len(cluster.gsi.scan("by_v", low=[7], high=[7],
                                    scan_consistency="request_plus")) == 1
        cluster.tick(120.0)  # pager fires (interval 30s) well past expiry
        rows = cluster.gsi.scan("by_v", low=[7], high=[7],
                                scan_consistency="request_plus")
        assert rows == []

    def test_expiry_propagates_to_replicas(self):
        cluster = Cluster(nodes=2, vbuckets=8)
        cluster.create_bucket("b", expiry_pager_interval=30.0)
        client = cluster.connect()
        now = cluster.clock.now()
        client.upsert("b", "ephemeral", 1, expiry=now + 10.0)
        cluster.run_until_idle()
        cluster.tick(120.0)
        vb = cluster.manager.cluster_maps["b"].vbucket_for_key("ephemeral")
        replica = cluster.manager.cluster_maps["b"].replica_nodes(vb)[0]
        entry = cluster.node(replica).engines["b"].vbuckets[vb].hashtable.peek(
            "ephemeral")
        assert entry.doc.meta.deleted

    def test_pager_disabled(self):
        cluster = Cluster(nodes=1, vbuckets=8)
        cluster.create_bucket("b", expiry_pager_interval=None, replicas=0)
        client = cluster.connect()
        now = cluster.clock.now()
        client.upsert("b", "k", 1, expiry=now + 10.0)
        cluster.tick(120.0)
        vb = cluster.manager.cluster_maps["b"].vbucket_for_key("k")
        node = cluster.manager.cluster_maps["b"].active_node(vb)
        entry = cluster.node(node).engines["b"].vbuckets[vb].hashtable.peek("k")
        # No pager: still physically present (until accessed).
        assert not entry.doc.meta.deleted
        with pytest.raises(KeyNotFoundError):
            client.get("b", "k")  # lazy expiry on access still works
