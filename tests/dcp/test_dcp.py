"""Tests for DCP streams: in-memory streaming, disk backfill, snapshot
markers, deduplication, and failover-log rollback."""

import pytest

from repro.common.errors import NotMyVBucketError, StreamRollbackRequired
from repro.dcp.messages import Deletion, Mutation, SnapshotMarker, StreamEnd
from repro.dcp.producer import DcpProducer
from repro.kv.engine import KVEngine, VBucketState

VB = 0


@pytest.fixture
def engine():
    eng = KVEngine("node1", "default")
    eng.create_vbucket(VB)
    return eng


@pytest.fixture
def producer(engine):
    return DcpProducer(engine)


def drain(stream, limit=10_000):
    """Pull until the stream yields nothing (caught up) or ends."""
    out = []
    while True:
        batch = stream.take()
        if not batch:
            return out
        out.extend(batch)
        if any(isinstance(m, StreamEnd) for m in batch):
            return out
        if len(out) > limit:
            raise AssertionError("stream did not quiesce")


def items_of(messages):
    return [m for m in messages if isinstance(m, (Mutation, Deletion))]


class TestInMemoryStreaming:
    def test_stream_from_zero_sees_all(self, engine, producer):
        for i in range(5):
            engine.upsert(VB, f"k{i}", i)
        stream = producer.stream_request(VB)
        messages = drain(stream)
        assert isinstance(messages[0], SnapshotMarker)
        assert [m.key for m in items_of(messages)] == [f"k{i}" for i in range(5)]
        assert stream.caught_up()

    def test_marker_covers_window(self, engine, producer):
        for i in range(3):
            engine.upsert(VB, f"k{i}", i)
        messages = drain(producer.stream_request(VB))
        marker = messages[0]
        assert (marker.start_seqno, marker.end_seqno) == (1, 3)
        assert not marker.from_disk

    def test_deletions_streamed(self, engine, producer):
        engine.upsert(VB, "k", 1)
        engine.delete(VB, "k")
        messages = items_of(drain(producer.stream_request(VB)))
        assert isinstance(messages[0], Mutation)
        assert isinstance(messages[1], Deletion)
        assert messages[1].doc.meta.deleted

    def test_incremental_pull(self, engine, producer):
        engine.upsert(VB, "a", 1)
        stream = producer.stream_request(VB)
        first = drain(stream)
        assert [m.key for m in items_of(first)] == ["a"]
        engine.upsert(VB, "b", 2)
        second = drain(stream)
        assert [m.key for m in items_of(second)] == ["b"]

    def test_start_mid_history(self, engine, producer):
        for i in range(6):
            engine.upsert(VB, f"k{i}", i)
        stream = producer.stream_request(VB, start_seqno=3)
        assert [m.key for m in items_of(drain(stream))] == ["k3", "k4", "k5"]

    def test_bounded_stream_ends(self, engine, producer):
        for i in range(5):
            engine.upsert(VB, f"k{i}", i)
        stream = producer.stream_request(VB, end_seqno=3)
        messages = drain(stream)
        assert isinstance(messages[-1], StreamEnd)
        assert [m.key for m in items_of(messages)] == ["k0", "k1", "k2"]
        assert stream.closed

    def test_take_respects_max_items(self, engine, producer):
        for i in range(20):
            engine.upsert(VB, f"k{i}", i)
        stream = producer.stream_request(VB)
        batch = stream.take(max_items=5)
        assert len(items_of(batch)) <= 5

    def test_empty_vbucket_stream_is_quiet(self, producer):
        stream = producer.stream_request(VB)
        assert stream.take() == []
        assert stream.caught_up()


class TestBackfill:
    def make_trimmed_engine(self):
        engine = KVEngine("node1", "default")
        engine.create_vbucket(VB)
        for i in range(10):
            engine.upsert(VB, f"k{i}", i)
        engine.flush()
        vb = engine.vbuckets[VB]
        vb.trim_change_buffer()
        assert vb.change_buffer == []
        return engine

    def test_backfill_from_disk(self):
        engine = self.make_trimmed_engine()
        stream = DcpProducer(engine).stream_request(VB)
        messages = drain(stream)
        marker = messages[0]
        assert marker.from_disk
        assert [m.key for m in items_of(messages)] == [f"k{i}" for i in range(10)]

    def test_backfill_then_memory(self):
        engine = self.make_trimmed_engine()
        engine.upsert(VB, "fresh", 1)
        messages = drain(DcpProducer(engine).stream_request(VB))
        markers = [m for m in messages if isinstance(m, SnapshotMarker)]
        assert markers[0].from_disk and not markers[-1].from_disk
        assert [m.key for m in items_of(messages)][-1] == "fresh"

    def test_backfill_deduplicates(self):
        """Disk backfill sends only the latest version of each key --
        exactly the 'aggregated at the level of persistence' behaviour."""
        engine = KVEngine("node1", "default")
        engine.create_vbucket(VB)
        for round_number in range(3):
            engine.upsert(VB, "hot", round_number)
        engine.flush()
        vb = engine.vbuckets[VB]
        vb.trim_change_buffer()
        messages = items_of(drain(DcpProducer(engine).stream_request(VB)))
        assert len(messages) == 1
        assert messages[0].doc.value == 2
        assert messages[0].seqno == 3

    def test_backfill_mid_gap(self):
        engine = self.make_trimmed_engine()
        stream = DcpProducer(engine).stream_request(VB, start_seqno=7)
        assert [m.key for m in items_of(drain(stream))] == ["k7", "k8", "k9"]


class TestStreamRequestValidation:
    def test_future_seqno_demands_rollback(self, engine, producer):
        engine.upsert(VB, "k", 1)
        with pytest.raises(StreamRollbackRequired) as excinfo:
            producer.stream_request(VB, start_seqno=99)
        assert excinfo.value.rollback_seqno == 1

    def test_unknown_vbucket_rejected(self, producer):
        with pytest.raises(NotMyVBucketError):
            producer.stream_request(42)

    def test_dead_vbucket_rejected(self, engine, producer):
        engine.set_vbucket_state(VB, VBucketState.DEAD)
        with pytest.raises(NotMyVBucketError):
            producer.stream_request(VB)

    def test_replica_streaming_allowed(self, engine):
        """Rebalance movers stream from replicas (section 4.3.1)."""
        engine.create_vbucket(1, VBucketState.REPLICA)
        stream = DcpProducer(engine).stream_request(1)
        assert stream.take() == []

    def test_replica_streaming_can_be_disallowed(self, engine):
        engine.create_vbucket(1, VBucketState.REPLICA)
        with pytest.raises(NotMyVBucketError):
            DcpProducer(engine).stream_request(1, allow_replica=False)


class TestFailoverLog:
    def test_matching_uuid_continues(self, engine, producer):
        engine.upsert(VB, "k", 1)
        uuid = engine.vbuckets[VB].uuid
        stream = producer.stream_request(VB, start_seqno=1, vb_uuid=uuid)
        assert stream.take() == []  # caught up

    def test_unknown_uuid_rolls_back_to_zero(self, engine, producer):
        engine.upsert(VB, "k", 1)
        with pytest.raises(StreamRollbackRequired) as excinfo:
            producer.stream_request(VB, start_seqno=1, vb_uuid=31337)
        assert excinfo.value.rollback_seqno == 0

    def test_divergent_branch_rolls_back_to_branch_point(self, engine, producer):
        """Consumer read ahead on the old branch; after promotion it must
        discard back to where the new branch began."""
        engine.upsert(VB, "k1", 1)
        vb = engine.vbuckets[VB]
        old_uuid = vb.uuid
        # Simulate: this node's copy became active at seqno 1 under a new
        # uuid (the old active took mutations 2..5 that were lost).
        vb.state = VBucketState.REPLICA
        engine.set_vbucket_state(VB, VBucketState.ACTIVE)
        with pytest.raises(StreamRollbackRequired) as excinfo:
            producer.stream_request(VB, start_seqno=5, vb_uuid=old_uuid)
        assert excinfo.value.rollback_seqno == 1

    def test_old_branch_within_range_is_fine(self, engine, producer):
        engine.upsert(VB, "k1", 1)
        vb = engine.vbuckets[VB]
        old_uuid = vb.uuid
        vb.state = VBucketState.REPLICA
        engine.set_vbucket_state(VB, VBucketState.ACTIVE)
        engine.upsert(VB, "k2", 2)
        stream = producer.stream_request(VB, start_seqno=1, vb_uuid=old_uuid)
        assert [m.key for m in items_of(drain(stream))] == ["k2"]

    def test_failover_log_exposed(self, engine, producer):
        log = producer.failover_log(VB)
        assert len(log) == 1
        engine.vbuckets[VB].state = VBucketState.REPLICA
        engine.set_vbucket_state(VB, VBucketState.ACTIVE)
        assert len(producer.failover_log(VB)) == 2
