"""Tests for online compaction (section 4.3.3)."""


from repro.common.disk import SimulatedDisk
from repro.storage.compaction import Compactor
from repro.storage.couchstore import VBucketStore

from .test_couchstore import make_doc


def churned_store(disk, rounds=20, keys=5):
    store = VBucketStore(disk, "vb0", 0)
    seq = 0
    for _ in range(rounds):
        batch = []
        for k in range(keys):
            seq += 1
            batch.append(make_doc(f"key{k}", {"pad": "y" * 100, "seq": seq}, seqno=seq))
        store.save_docs(batch)
        store.write_header()
    return store, seq


class TestCompactor:
    def test_needs_compaction_threshold(self):
        disk = SimulatedDisk()
        store, _ = churned_store(disk)
        compactor = Compactor(disk, threshold=0.3)
        assert compactor.needs_compaction(store)

    def test_small_files_skipped(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1)])
        assert not Compactor(disk).needs_compaction(store)

    def test_compaction_shrinks_file_and_keeps_data(self):
        disk = SimulatedDisk()
        store, seq = churned_store(disk)
        before = store.file_size
        fragmentation_before = store.fragmentation()
        compacted = Compactor(disk).compact(store)
        assert compacted.file_size < before / 2
        # live_size counts doc bodies only, so tree-node overhead keeps the
        # ratio above zero even in a freshly compacted file; the point is
        # the garbage is gone.
        assert compacted.fragmentation() < fragmentation_before - 0.3
        for k in range(5):
            assert compacted.get(f"key{k}").value["seq"] > 0
        assert compacted.doc_count == 5
        assert compacted.update_seq == seq

    def test_compacted_file_replaces_original_name(self):
        disk = SimulatedDisk()
        store, _ = churned_store(disk)
        compacted = Compactor(disk).compact(store)
        assert compacted.filename == "vb0"
        assert disk.list_files() == ["vb0"]

    def test_compaction_survives_reopen(self):
        disk = SimulatedDisk()
        store, seq = churned_store(disk)
        Compactor(disk).compact(store)
        reopened = VBucketStore(disk, "vb0", 0)
        assert reopened.doc_count == 5
        assert reopened.update_seq == seq

    def test_changes_since_preserved(self):
        disk = SimulatedDisk()
        store, seq = churned_store(disk)
        compacted = Compactor(disk).compact(store)
        changes = list(compacted.changes_since(0))
        assert len(changes) == 5
        assert all(d.meta.seqno > seq - 5 for d in changes)

    def test_tombstones_kept_by_default(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1)])
        store.save_docs([make_doc("a", None, seqno=2, deleted=True)])
        store.write_header()
        compacted = Compactor(disk).compact(store)
        assert compacted.get("a", include_deleted=True).meta.deleted

    def test_tombstone_purge(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1), make_doc("b", 2, seqno=2)])
        store.save_docs([make_doc("a", None, seqno=3, deleted=True)])
        store.write_header()
        compacted = Compactor(disk).compact(store, purge_before_seq=3)
        assert not compacted.by_key.lookup("a")[0]
        assert compacted.contains("b")

    def test_run_counter(self):
        disk = SimulatedDisk()
        store, _ = churned_store(disk)
        compactor = Compactor(disk)
        compactor.compact(store)
        assert compactor.runs == 1

    def test_write_amplification_accounting(self):
        """Compaction costs extra writes -- the disk stats expose this for
        the ablation bench."""
        disk = SimulatedDisk()
        store, _ = churned_store(disk)
        written_before = disk.stats.bytes_written
        Compactor(disk).compact(store)
        assert disk.stats.bytes_written > written_before
