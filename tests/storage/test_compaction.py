"""Tests for online compaction (section 4.3.3)."""


from repro.common.disk import SimulatedDisk
from repro.storage.compaction import Compactor
from repro.storage.couchstore import VBucketStore

from .test_couchstore import make_doc


def churned_store(disk, rounds=20, keys=5):
    store = VBucketStore(disk, "vb0", 0)
    seq = 0
    for _ in range(rounds):
        batch = []
        for k in range(keys):
            seq += 1
            batch.append(make_doc(f"key{k}", {"pad": "y" * 100, "seq": seq}, seqno=seq))
        store.save_docs(batch)
        store.write_header()
    return store, seq


class TestCompactor:
    def test_needs_compaction_threshold(self):
        disk = SimulatedDisk()
        store, _ = churned_store(disk)
        compactor = Compactor(disk, threshold=0.3)
        assert compactor.needs_compaction(store)

    def test_small_files_skipped(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1)])
        assert not Compactor(disk).needs_compaction(store)

    def test_compaction_shrinks_file_and_keeps_data(self):
        disk = SimulatedDisk()
        store, seq = churned_store(disk)
        before = store.file_size
        fragmentation_before = store.fragmentation()
        compacted = Compactor(disk).compact(store)
        assert compacted.file_size < before / 2
        assert compacted.fragmentation() < fragmentation_before - 0.3
        for k in range(5):
            assert compacted.get(f"key{k}").value["seq"] > 0
        assert compacted.doc_count == 5
        assert compacted.update_seq == seq

    def test_compacted_file_replaces_original_name(self):
        disk = SimulatedDisk()
        store, _ = churned_store(disk)
        compacted = Compactor(disk).compact(store)
        assert compacted.filename == "vb0"
        assert disk.list_files() == ["vb0"]

    def test_compaction_survives_reopen(self):
        disk = SimulatedDisk()
        store, seq = churned_store(disk)
        Compactor(disk).compact(store)
        reopened = VBucketStore(disk, "vb0", 0)
        assert reopened.doc_count == 5
        assert reopened.update_seq == seq

    def test_changes_since_preserved(self):
        disk = SimulatedDisk()
        store, seq = churned_store(disk)
        compacted = Compactor(disk).compact(store)
        changes = list(compacted.changes_since(0))
        assert len(changes) == 5
        assert all(d.meta.seqno > seq - 5 for d in changes)

    def test_tombstones_kept_by_default(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1)])
        store.save_docs([make_doc("a", None, seqno=2, deleted=True)])
        store.write_header()
        compacted = Compactor(disk).compact(store)
        assert compacted.get("a", include_deleted=True).meta.deleted

    def test_tombstone_purge(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1), make_doc("b", 2, seqno=2)])
        store.save_docs([make_doc("a", None, seqno=3, deleted=True)])
        store.write_header()
        compacted = Compactor(disk).compact(store, purge_before_seq=3)
        assert not compacted.by_key.lookup("a")[0]
        assert compacted.contains("b")

    def test_run_counter(self):
        disk = SimulatedDisk()
        store, _ = churned_store(disk)
        compactor = Compactor(disk)
        compactor.compact(store)
        assert compactor.runs == 1

    def test_write_amplification_accounting(self):
        """Compaction costs extra writes -- the disk stats expose this for
        the ablation bench."""
        disk = SimulatedDisk()
        store, _ = churned_store(disk)
        written_before = disk.stats.bytes_written
        Compactor(disk).compact(store)
        assert disk.stats.bytes_written > written_before


class TestFragmentationAccounting:
    """Live B-tree nodes are live bytes, not garbage.

    The regression these tests pin down: with only doc bodies in the
    numerator, a freshly compacted file (roughly one third doc bodies,
    two thirds index nodes) reported ~0.65 fragmentation, stayed above
    any sane threshold, and the compactor rewrote it every pump round --
    the scheduler never went idle past a few hundred docs per vBucket.
    """

    def test_fresh_compaction_reads_nearly_clean(self):
        disk = SimulatedDisk()
        store, _ = churned_store(disk, rounds=40, keys=50)
        compacted = Compactor(disk).compact(store)
        assert compacted.fragmentation() < 0.05

    def test_compactor_converges(self):
        """One compaction is enough: the result does not re-trigger."""
        disk = SimulatedDisk()
        store, _ = churned_store(disk, rounds=40, keys=50)
        compactor = Compactor(disk, threshold=0.3)
        assert compactor.needs_compaction(store)
        compacted = compactor.compact(store)
        assert not compactor.needs_compaction(compacted)
        # Even at the engine's default, looser threshold.
        assert not Compactor(disk, threshold=0.6).needs_compaction(compacted)

    def test_node_bytes_incremental_matches_walk(self):
        """The counters maintained across batch updates must equal what a
        full traversal measures -- otherwise fragmentation drifts."""
        disk = SimulatedDisk()
        store, _ = churned_store(disk, rounds=25, keys=40)
        assert store.by_key.node_bytes == store.by_key.measure_node_bytes()
        assert store.by_seq.node_bytes == store.by_seq.measure_node_bytes()

    def test_node_bytes_roundtrip_through_header(self):
        disk = SimulatedDisk()
        store, _ = churned_store(disk, rounds=10, keys=20)
        reopened = VBucketStore(disk, "vb0", 0)
        assert reopened.by_key.node_bytes == store.by_key.node_bytes
        assert reopened.by_seq.node_bytes == store.by_seq.node_bytes
        assert reopened.fragmentation() == store.fragmentation()

    def test_legacy_header_without_counters_measures_by_walk(self):
        """Files written before the counters existed recover by walking
        the trees once instead of reporting garbage fragmentation."""
        import json

        from repro.storage.appendlog import RT_HEADER

        disk = SimulatedDisk()
        store, _ = churned_store(disk, rounds=10, keys=20)
        legacy = {
            "by_key_root": store.by_key.root,
            "by_seq_root": store.by_seq.root,
            "update_seq": store.update_seq,
            "doc_count": store.doc_count,
            "deleted_count": store.deleted_count,
            "live_size": store.live_size,
            "vbucket_id": store.vbucket_id,
        }
        store.log.append(RT_HEADER,
                         json.dumps(legacy, separators=(",", ":")).encode())
        store.log.sync()
        reopened = VBucketStore(disk, "vb0", 0)
        assert reopened.by_key.node_bytes == store.by_key.node_bytes
        assert reopened.by_seq.node_bytes == store.by_seq.node_bytes

    def test_live_bytes_bounded_by_file_size(self):
        disk = SimulatedDisk()
        store, _ = churned_store(disk, rounds=15, keys=30)
        assert 0 < store.live_bytes() <= store.file_size
