"""Tests for the per-vBucket storage files: persistence, recovery after
crash, snapshot reads, and the append-log framing."""

import pytest

from repro.common.disk import SimulatedDisk
from repro.common.document import Document, DocumentMeta
from repro.common.errors import CorruptFileError, KeyNotFoundError
from repro.storage.appendlog import RT_DOC, RT_HEADER, AppendLog
from repro.storage.couchstore import VBucketStore


def make_doc(key, value, seqno, deleted=False, cas=None, rev=1):
    meta = DocumentMeta(
        key=key, cas=cas if cas is not None else seqno, seqno=seqno,
        rev=rev, deleted=deleted,
    )
    return Document(meta, None if deleted else value)


class TestAppendLog:
    def test_roundtrip(self):
        log = AppendLog(SimulatedDisk().open("f"))
        offset = log.append(RT_DOC, b"payload")
        assert log.read(offset) == (RT_DOC, b"payload")

    def test_scan_all_records(self):
        log = AppendLog(SimulatedDisk().open("f"))
        log.append(RT_DOC, b"a")
        log.append(RT_HEADER, b"h")
        records = [(rt, body) for _off, rt, body in log.scan()]
        assert records == [(RT_DOC, b"a"), (RT_HEADER, b"h")]

    def test_scan_stops_at_torn_tail(self):
        disk = SimulatedDisk()
        file = disk.open("f")
        log = AppendLog(file)
        log.append(RT_DOC, b"good")
        file.append(b"\xc7\x01garbage-partial")
        records = list(log.scan())
        assert len(records) == 1

    def test_corrupt_read_raises(self):
        disk = SimulatedDisk()
        file = disk.open("f")
        file.append(b"\x00" * 20)
        log = AppendLog(file)
        with pytest.raises(CorruptFileError):
            log.read(0)

    def test_find_last_header(self):
        log = AppendLog(SimulatedDisk().open("f"))
        log.append(RT_HEADER, b"h1")
        log.append(RT_DOC, b"d")
        log.append(RT_HEADER, b"h2")
        _offset, body = log.find_last_header()
        assert body == b"h2"

    def test_find_last_header_none(self):
        log = AppendLog(SimulatedDisk().open("f"))
        assert log.find_last_header() is None


class TestVBucketStore:
    def test_save_and_get(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        store.save_docs([make_doc("a", {"x": 1}, seqno=1)])
        doc = store.get("a")
        assert doc.value == {"x": 1}
        assert doc.meta.seqno == 1

    def test_get_missing_raises(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        with pytest.raises(KeyNotFoundError):
            store.get("ghost")

    def test_update_supersedes(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        store.save_docs([make_doc("a", {"v": 1}, seqno=1)])
        store.save_docs([make_doc("a", {"v": 2}, seqno=2)])
        assert store.get("a").value == {"v": 2}
        assert store.doc_count == 1
        assert store.update_seq == 2

    def test_batch_dedupe_keeps_newest(self):
        """Repeated updates within one flush batch are aggregated
        (section 2.3.2)."""
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        store.save_docs([
            make_doc("a", {"v": 1}, seqno=1),
            make_doc("a", {"v": 2}, seqno=2),
            make_doc("a", {"v": 3}, seqno=3),
        ])
        assert store.get("a").value == {"v": 3}
        assert store.doc_count == 1

    def test_delete_writes_tombstone(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        store.save_docs([make_doc("a", {"v": 1}, seqno=1)])
        store.save_docs([make_doc("a", None, seqno=2, deleted=True)])
        with pytest.raises(KeyNotFoundError):
            store.get("a")
        tombstone = store.get("a", include_deleted=True)
        assert tombstone.meta.deleted
        assert store.doc_count == 0
        assert store.deleted_count == 1

    def test_contains(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1)])
        assert store.contains("a")
        assert not store.contains("b")
        store.save_docs([make_doc("a", None, seqno=2, deleted=True)])
        assert not store.contains("a")

    def test_changes_since(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        store.save_docs([make_doc(f"k{i}", i, seqno=i) for i in range(1, 6)])
        changes = list(store.changes_since(2))
        assert [d.meta.seqno for d in changes] == [3, 4, 5]

    def test_changes_since_reflects_supersession(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1), make_doc("b", 1, seqno=2)])
        store.save_docs([make_doc("a", 2, seqno=3)])
        changes = list(store.changes_since(0))
        # "a"@1 was superseded by "a"@3; only the latest version per key
        # appears, in seqno order.
        assert [(d.key, d.meta.seqno) for d in changes] == [("b", 2), ("a", 3)]

    def test_all_docs_key_order(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        store.save_docs([
            make_doc("c", 3, seqno=1),
            make_doc("a", 1, seqno=2),
            make_doc("b", 2, seqno=3),
        ])
        assert [d.key for d in store.all_docs()] == ["a", "b", "c"]

    def test_all_docs_skips_tombstones(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1), make_doc("b", 2, seqno=2)])
        store.save_docs([make_doc("a", None, seqno=3, deleted=True)])
        assert [d.key for d in store.all_docs()] == ["b"]


class TestRecovery:
    def test_recover_after_clean_shutdown(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", {"v": 1}, seqno=1)])
        store.write_header(sync=True)

        reopened = VBucketStore(disk, "vb0", 0)
        assert reopened.get("a").value == {"v": 1}
        assert reopened.update_seq == 1
        assert reopened.doc_count == 1

    def test_crash_loses_unheadered_writes(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1)])
        store.write_header(sync=True)
        store.save_docs([make_doc("b", 2, seqno=2)])  # no header, no sync
        disk.crash()

        reopened = VBucketStore(disk, "vb0", 0)
        assert reopened.contains("a")
        assert not reopened.contains("b")
        assert reopened.update_seq == 1

    def test_crash_with_no_header_yields_empty_store(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1)])
        disk.crash()
        reopened = VBucketStore(disk, "vb0", 0)
        assert not reopened.contains("a")
        assert reopened.update_seq == 0

    def test_unsynced_header_lost_on_crash(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1)])
        store.write_header(sync=True)
        store.save_docs([make_doc("b", 2, seqno=2)])
        store.write_header(sync=False)
        disk.crash()
        reopened = VBucketStore(disk, "vb0", 0)
        assert not reopened.contains("b")

    def test_recovery_truncates_garbage_tail(self):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        store.save_docs([make_doc("a", 1, seqno=1)])
        store.write_header(sync=True)
        size_at_header = store.log.size
        store.save_docs([make_doc("b", 2, seqno=2)])
        reopened = VBucketStore(disk, "vb0", 0)
        assert reopened.log.size == size_at_header


class TestFragmentation:
    def test_fresh_store_not_fragmented(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        assert store.fragmentation() == 0.0

    def test_overwrites_increase_fragmentation(self):
        store = VBucketStore(SimulatedDisk(), "vb0", 0)
        seq = 0
        for round_number in range(10):
            seq += 1
            store.save_docs([make_doc("hot", {"pad": "x" * 200, "round": round_number},
                                      seqno=seq)])
            store.write_header()
        assert store.fragmentation() > 0.5
