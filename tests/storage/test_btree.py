"""Tests for the append-only copy-on-write B+tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.disk import SimulatedDisk
from repro.storage.appendlog import AppendLog
from repro.storage.btree import BTree


def make_tree(**kwargs) -> BTree:
    log = AppendLog(SimulatedDisk().open("t"))
    return BTree(log, **kwargs)


class TestBasicOps:
    def test_empty_lookup(self):
        tree = make_tree()
        assert tree.lookup("a") == (False, None)

    def test_insert_and_lookup(self):
        tree = make_tree().batch_update(inserts=[("a", 1), ("b", 2)])
        assert tree.lookup("a") == (True, 1)
        assert tree.lookup("b") == (True, 2)
        assert tree.lookup("c") == (False, None)

    def test_update_replaces(self):
        tree = make_tree().batch_update(inserts=[("a", 1)])
        tree = tree.batch_update(inserts=[("a", 99)])
        assert tree.lookup("a") == (True, 99)
        assert tree.count() == 1

    def test_delete(self):
        tree = make_tree().batch_update(inserts=[("a", 1), ("b", 2)])
        tree = tree.batch_update(deletes=["a"])
        assert tree.lookup("a") == (False, None)
        assert tree.lookup("b") == (True, 2)

    def test_delete_absent_is_noop(self):
        tree = make_tree().batch_update(inserts=[("a", 1)])
        tree = tree.batch_update(deletes=["zzz"])
        assert tree.count() == 1

    def test_delete_everything_empties_root(self):
        tree = make_tree().batch_update(inserts=[("a", 1)])
        tree = tree.batch_update(deletes=["a"])
        assert tree.root is None

    def test_empty_batch_returns_self(self):
        tree = make_tree()
        assert tree.batch_update() is tree

    def test_insert_overrides_delete_in_same_batch(self):
        tree = make_tree().batch_update(inserts=[("a", 1)])
        tree = tree.batch_update(inserts=[("a", 2)], deletes=["a"])
        assert tree.lookup("a") == (True, 2)

    def test_copy_on_write_snapshots(self):
        """Old roots stay readable after updates (MVCC for backfill)."""
        tree_v1 = make_tree().batch_update(inserts=[("a", 1)])
        tree_v2 = tree_v1.batch_update(inserts=[("a", 2), ("b", 3)])
        assert tree_v1.lookup("a") == (True, 1)
        assert tree_v1.lookup("b") == (False, None)
        assert tree_v2.lookup("a") == (True, 2)


class TestLargeTrees:
    def test_many_keys_split_into_multiple_levels(self):
        tree = make_tree(max_node_items=4)
        keys = [f"k{i:05d}" for i in range(500)]
        tree = tree.batch_update(inserts=[(k, i) for i, k in enumerate(keys)])
        for i in (0, 123, 250, 499):
            assert tree.lookup(keys[i]) == (True, i)
        assert tree.count() == 500

    def test_incremental_inserts(self):
        tree = make_tree(max_node_items=4)
        for i in range(200):
            tree = tree.batch_update(inserts=[(f"k{i:04d}", i)])
        assert tree.count() == 200
        assert [v for _k, v in tree.items()] == list(range(200))

    def test_items_sorted(self):
        import random
        rng = random.Random(7)
        keys = [f"k{i:04d}" for i in range(300)]
        shuffled = keys[:]
        rng.shuffle(shuffled)
        tree = make_tree(max_node_items=8)
        for key in shuffled:
            tree = tree.batch_update(inserts=[(key, None)])
        assert [k for k, _ in tree.items()] == keys


class TestRangeScans:
    def make_populated(self):
        tree = make_tree(max_node_items=4)
        return tree.batch_update(inserts=[(f"k{i:03d}", i) for i in range(50)])

    def test_full_range(self):
        tree = self.make_populated()
        assert len(list(tree.range())) == 50

    def test_bounded_range(self):
        tree = self.make_populated()
        rows = list(tree.range(start="k010", end="k019"))
        assert [k for k, _ in rows] == [f"k{i:03d}" for i in range(10, 20)]

    def test_exclusive_bounds(self):
        tree = self.make_populated()
        rows = list(
            tree.range(start="k010", end="k015",
                       inclusive_start=False, inclusive_end=False)
        )
        assert [k for k, _ in rows] == ["k011", "k012", "k013", "k014"]

    def test_descending(self):
        tree = self.make_populated()
        rows = list(tree.range(start="k010", end="k012", descending=True))
        assert [k for k, _ in rows] == ["k012", "k011", "k010"]

    def test_open_start(self):
        tree = self.make_populated()
        rows = list(tree.range(end="k002"))
        assert [k for k, _ in rows] == ["k000", "k001", "k002"]

    def test_open_end(self):
        tree = self.make_populated()
        rows = list(tree.range(start="k048"))
        assert [k for k, _ in rows] == ["k048", "k049"]

    def test_empty_range(self):
        tree = self.make_populated()
        assert list(tree.range(start="zzz")) == []


class TestReduce:
    @staticmethod
    def count_reduce(values):
        return len(values)

    @staticmethod
    def count_rereduce(reductions):
        return sum(reductions)

    def make_counted(self, n=100):
        tree = make_tree(
            max_node_items=4,
            reduce_fn=self.count_reduce,
            rereduce_fn=self.count_rereduce,
        )
        return tree.batch_update(inserts=[(f"k{i:03d}", i) for i in range(n)])

    def test_full_reduce(self):
        assert self.make_counted(100).full_reduce() == 100

    def test_full_reduce_updates(self):
        tree = self.make_counted(10).batch_update(deletes=["k003"])
        assert tree.full_reduce() == 9

    def test_reduce_range(self):
        tree = self.make_counted(100)
        assert tree.reduce_range(start="k010", end="k019") == 10

    def test_reduce_range_full(self):
        tree = self.make_counted(64)
        assert tree.reduce_range() == 64

    def test_reduce_range_exclusive(self):
        tree = self.make_counted(50)
        assert tree.reduce_range(start="k010", end="k020",
                                 inclusive_start=False, inclusive_end=False) == 9

    def test_reduce_range_empty(self):
        tree = self.make_counted(10)
        assert tree.reduce_range(start="z", end="zz") == 0

    def test_reduce_without_fn_raises(self):
        with pytest.raises(ValueError):
            make_tree().reduce_range()

    def test_sum_reduce(self):
        tree = make_tree(
            max_node_items=4,
            reduce_fn=lambda values: sum(values),
        )
        tree = tree.batch_update(inserts=[(f"k{i:02d}", i) for i in range(20)])
        assert tree.full_reduce() == sum(range(20))
        assert tree.reduce_range(start="k05", end="k09") == 5 + 6 + 7 + 8 + 9


class TestIntegerKeys:
    def test_seqno_style_tree(self):
        tree = make_tree(max_node_items=4)
        tree = tree.batch_update(inserts=[(i, f"doc{i}") for i in range(100)])
        assert tree.lookup(42) == (True, "doc42")
        rows = list(tree.range(start=90, inclusive_start=False))
        assert [k for k, _ in rows] == list(range(91, 100))


@st.composite
def operation_batches(draw):
    n_batches = draw(st.integers(1, 5))
    batches = []
    for _ in range(n_batches):
        inserts = draw(
            st.lists(
                st.tuples(st.integers(0, 60), st.integers(-100, 100)),
                max_size=20,
            )
        )
        deletes = draw(st.lists(st.integers(0, 60), max_size=10))
        batches.append((inserts, deletes))
    return batches


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(operation_batches(), st.integers(3, 8))
    def test_matches_dict_model(self, batches, fanout):
        """The tree must behave exactly like a sorted dict under any
        sequence of batch updates."""
        tree = make_tree(max_node_items=fanout)
        model: dict[int, int] = {}
        for inserts, deletes in batches:
            tree = tree.batch_update(
                inserts=list(inserts), deletes=list(deletes)
            )
            for key in deletes:
                model.pop(key, None)
            for key, value in inserts:
                model[key] = value
            assert sorted(model.items()) == list(tree.items())
            for key in range(0, 61, 7):
                assert tree.lookup(key) == (
                    (True, model[key]) if key in model else (False, None)
                )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 100), st.integers(0, 5)), max_size=40),
        st.integers(0, 100),
        st.integers(0, 100),
    )
    def test_reduce_range_matches_brute_force(self, inserts, bound_a, bound_b):
        start, end = min(bound_a, bound_b), max(bound_a, bound_b)
        tree = make_tree(
            max_node_items=4,
            reduce_fn=lambda vs: sum(vs),
        )
        tree = tree.batch_update(inserts=list(inserts))
        model = dict(inserts)
        expected = sum(v for k, v in model.items() if start <= k <= end)
        assert tree.reduce_range(start=start, end=end) == expected
