"""Shared test fixtures, including the runtime wall-clock guard.

repro-lint's ``no-wall-clock`` rule catches wall-clock reads statically;
the autouse fixture below is its runtime counterpart.  It wraps
``time.time`` and ``time.sleep`` so that any call whose *direct caller*
is a frame inside ``src/repro`` fails the test immediately -- simulation
code must go through the injected :class:`~repro.common.clock.Clock`.
Harness code (tests, benchmarks, pytest internals) passes through to the
real functions untouched.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

_REPRO_MARKER = os.path.join("src", "repro") + os.sep


def _guarded(real, name: str):
    def wrapper(*args, **kwargs):
        caller = sys._getframe(1).f_code.co_filename
        if _REPRO_MARKER in caller:
            raise AssertionError(
                f"time.{name}() called from simulation code "
                f"({caller}); use the injected Clock "
                f"(repro.common.clock) instead"
            )
        return real(*args, **kwargs)

    return wrapper


@pytest.fixture(autouse=True)
def forbid_wall_clock_in_repro(monkeypatch):
    monkeypatch.setattr(time, "time", _guarded(time.time, "time"))
    monkeypatch.setattr(time, "sleep", _guarded(time.sleep, "sleep"))
