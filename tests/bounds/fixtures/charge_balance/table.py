"""Known-bad fixture: a memory-accounted store whose delete path
forgets the negative charge, so the counter keeps counting freed
bytes."""


def hot_path(fn):
    return fn


class AccountedTable:
    def __init__(self):
        self.entries = {}
        self.mem_used = 0

    def charge(self, delta):
        self.mem_used += delta

    @hot_path
    def set(self, key, size):
        self.entries[key] = size
        self.charge(size)

    @hot_path
    def delete(self, key):
        # Removes from the charged container with no charge(-...) on
        # any path through this method: charge-balance must flag it.
        del self.entries[key]
