"""Known-bad fixture: a bulkhead slot released only on the success
path -- an exception between acquire and release leaks it."""


def hot_path(fn):
    return fn


class Frontdoor:
    @hot_path
    def handle(self, request):
        slot = self.bulkhead.acquire()
        result = self.process(request)
        # Reached only if process() returns normally; the release
        # belongs in a finally block -- leak-on-error must flag it.
        slot.release()
        return result
