"""Known-bad fixture: a dict-backed memo cache with no eviction."""


def hot_path(fn):
    return fn


def compile_plan(text):
    return ("plan", text)


class PlanCache:
    """Check-then-store memoization that never evicts anything."""

    def __init__(self):
        self.plans = {}

    @hot_path
    def lookup(self, text):
        plan = self.plans.get(text)
        if plan is None:
            plan = compile_plan(text)
            # Cache fill with no LRU, no epoch invalidation, and no
            # @bounded justification: cache-without-eviction territory.
            self.plans[text] = plan
        return plan
