"""Known-bad fixture: a TMPFAIL retry loop that spins at full speed
against a node that asked for relief."""


def hot_path(fn):
    return fn


class TemporaryFailureError(Exception):
    pass


class SpinningClient:
    @hot_path
    def fetch(self, key):
        for _attempt in range(5):
            try:
                return self.network.call("me", "node1", "kv_get", key)
            except TemporaryFailureError:
                # Immediate re-issue: no backoff/delay/sleep anywhere in
                # the loop -- retry-without-backoff must flag it.
                continue
        return None
