"""Known-bad fixture: a pump-reachable buffer nothing ever drains."""


def hot_path(fn):
    return fn


class EventCollector:
    """Collects every event a hot path ever sees, forever."""

    def __init__(self):
        self.backlog = []

    @hot_path
    def on_event(self, event):
        # Grows on every call; no maxlen, no drain, no cap, no
        # declaration -- the unbounded-buffer rule must flag it.
        self.backlog.append(event)
