"""The repro-bounds CLI contract: exit codes, check selection,
profiles, suppressions (including cross-tool isolation), declaration
forms, output formats, and the scope report -- one contract shared
with repro-lint/sanitize/flow/hotpath."""

from __future__ import annotations

import pytest

from repro.bounds.cli import main

#: A hot, growing, undrained buffer: one unbounded-buffer finding.
BAD_BUFFER = '''\
def hot_path(fn):
    return fn


class EventCollector:
    def __init__(self):
        self.backlog = []

    @hot_path
    def on_event(self, event):
        self.backlog.append(event)
'''

#: The same shape, bounded by a consumer drain: clean.
CLEAN_BUFFER = '''\
def hot_path(fn):
    return fn


class DrainedCollector:
    def __init__(self):
        self.queue = []

    @hot_path
    def push(self, item):
        self.queue.append(item)

    def drain(self):
        items, self.queue = self.queue, []
        return items
'''


def _write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return str(tmp_path)


class TestExitContract:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        code = main([_write(tmp_path, CLEAN_BUFFER), "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_BUFFER), "--profile", "strict"])
        out = capsys.readouterr().out
        assert code == 1
        assert "unbounded-buffer" in out
        assert "EventCollector.backlog" in out

    def test_unknown_check_exits_two(self, tmp_path, capsys):
        code = main([_write(tmp_path, CLEAN_BUFFER), "--check", "nope"])
        assert code == 2
        assert "nope" in capsys.readouterr().err

    def test_no_files_exits_two(self, tmp_path, capsys):
        code = main([str(tmp_path)])
        assert code == 2
        assert "no Python files" in capsys.readouterr().err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        code = main([_write(tmp_path, "def broken(:\n")])
        assert code == 2
        assert "mod.py" in capsys.readouterr().err


class TestCheckSelection:
    def test_deselected_check_is_silent(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_BUFFER),
                     "--check", "leak-on-error", "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_selected_check_still_fires(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_BUFFER),
                     "--check", "unbounded-buffer,leak-on-error",
                     "--profile", "strict"])
        assert code == 1, capsys.readouterr().out


class TestProfiles:
    CACHE = '''\
def hot_path(fn):
    return fn


class Memo:
    def __init__(self):
        self.seen = {}

    @hot_path
    def get(self, key):
        value = self.seen.get(key)
        if value is None:
            value = key * 2
            self.seen[key] = value
        return value
'''

    def test_relaxed_exempts_cache_eviction(self, tmp_path, capsys):
        root = _write(tmp_path, self.CACHE)
        assert main([root, "--profile", "relaxed"]) == 0
        assert main([root, "--profile", "strict"]) == 1
        capsys.readouterr()

    def test_relaxed_still_enforces_buffers(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_BUFFER), "--profile", "relaxed"])
        assert code == 1, capsys.readouterr().out


class TestSuppressions:
    def test_disable_next_silences(self, tmp_path, capsys):
        suppressed = BAD_BUFFER.replace(
            "        self.backlog.append(event)",
            "        # justified: fixture harness, reset between runs\n"
            "        # repro-bounds: disable-next=unbounded-buffer\n"
            "        self.backlog.append(event)",
        )
        code = main([_write(tmp_path, suppressed), "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_other_tools_comments_do_not_silence(self, tmp_path, capsys):
        not_ours = BAD_BUFFER.replace(
            "        self.backlog.append(event)",
            "        # repro-lint: disable-next=unbounded-buffer\n"
            "        # repro-hotpath: disable-next=unbounded-buffer\n"
            "        self.backlog.append(event)",
        )
        code = main([_write(tmp_path, not_ours), "--profile", "strict"])
        assert code == 1, capsys.readouterr().out


class TestDeclarations:
    def test_bounded_decorator_silences_growth(self, tmp_path, capsys):
        declared = BAD_BUFFER.replace(
            "def hot_path(fn):\n    return fn",
            "def hot_path(fn):\n    return fn\n\n\n"
            "def bounded(kind, reason):\n"
            "    def mark(fn):\n        return fn\n    return mark",
        ).replace(
            "    @hot_path\n    def on_event",
            "    @hot_path\n"
            "    @bounded(\"consumer-drained\", \"reporting pump drains "
            "it each round\")\n    def on_event",
        )
        code = main([_write(tmp_path, declared), "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_class_bounds_tuple_silences(self, tmp_path, capsys):
        declared = BAD_BUFFER.replace(
            "class EventCollector:",
            "class EventCollector:\n    __bounds__ = (\"backlog\",)",
        )
        code = main([_write(tmp_path, declared), "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_module_bounds_tuple_silences(self, tmp_path, capsys):
        declared = BAD_BUFFER + "\n\n__bounds__ = (\"EventCollector.backlog\",)\n"
        code = main([_write(tmp_path, declared), "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_deque_maxlen_is_a_bound(self, tmp_path, capsys):
        source = CLEAN_BUFFER.replace(
            "        self.queue = []",
            "        from collections import deque\n"
            "        self.queue = deque(maxlen=128)",
        ).replace(
            "    def drain(self):\n"
            "        items, self.queue = self.queue, []\n"
            "        return items\n",
            "",
        )
        code = main([_write(tmp_path, source), "--profile", "strict"])
        assert code == 0, capsys.readouterr().out


class TestOutputFormats:
    def test_github_annotations(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_BUFFER), "--profile", "strict",
                     "--format", "github"])
        out = capsys.readouterr().out
        assert code == 1
        assert "::error " in out
        assert "title=repro-bounds%3A unbounded-buffer" in out

    def test_quiet_drops_summary(self, tmp_path, capsys):
        main([_write(tmp_path, CLEAN_BUFFER), "--profile", "strict", "-q"])
        assert capsys.readouterr().out == ""


class TestScopeReport:
    def test_scope_report_lists_provenance(self, tmp_path, capsys):
        code = main([_write(tmp_path, BAD_BUFFER), "--report", "scope"])
        out = capsys.readouterr().out
        assert code == 0
        assert "on_event" in out
        assert "@hot_path root" in out


@pytest.mark.parametrize("flag", ["--profile", "--format", "--report"])
def test_bad_flag_values_exit_two(tmp_path, flag, capsys):
    with pytest.raises(SystemExit) as exc_info:
        main([str(tmp_path), flag, "bogus-value"])
    capsys.readouterr()
    assert exc_info.value.code == 2
