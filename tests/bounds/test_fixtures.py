"""Every broken fixture must fail with exactly its intended check, and
the tree itself must analyze clean -- the tier-1 gate that keeps the
resource-bounds invariants true going forward, mirroring the CI
``repro-bounds`` step (and the shape of ``tests/hotpath/test_fixtures.py``)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import parse_suppressions, suppressed
from repro.bounds import ALL_CHECKS, analyze
from repro.bounds.cli import main
from repro.flow.callgraph import build_callgraph
from repro.flow.project import Project

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: fixture directory -> the single check its defect must trip.
EXPECTED = {
    "unbounded_buffer": "unbounded-buffer",
    "cache_without_eviction": "cache-without-eviction",
    "charge_balance": "charge-balance",
    "retry_without_backoff": "retry-without-backoff",
    "leak_on_error": "leak-on-error",
}


def test_every_fixture_is_covered():
    assert sorted(EXPECTED) == sorted(
        p.name for p in FIXTURES.iterdir() if p.is_dir()
    )


def test_every_check_has_a_fixture():
    assert sorted(EXPECTED.values()) == sorted(ALL_CHECKS)


@pytest.mark.parametrize("fixture,check", sorted(EXPECTED.items()))
def test_fixture_fails_with_its_intended_check(fixture, check, capsys):
    code = main([str(FIXTURES / fixture), "--profile", "strict"])
    out = capsys.readouterr().out
    assert code == 1, out
    finding_lines = [
        line for line in out.splitlines()
        if line and not line.startswith("repro-bounds:")
    ]
    assert finding_lines, out
    assert all(f" {check}: " in line for line in finding_lines), out


def test_repro_package_is_strictly_clean():
    files = sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    project = Project.build(files)
    assert not project.parse_errors
    result = analyze(project, build_callgraph(project))
    suppressions = {
        module.path: parse_suppressions(module.source_lines, "repro-bounds")
        for module in project.modules.values()
    }
    remaining = [
        f for f in result.findings
        if not suppressed(f.check, f.line, suppressions.get(f.path, {}))
    ]
    assert remaining == [], "\n".join(f.format() for f in remaining)
    # The derived scope must stay non-trivial: pumps, RPC handlers, and
    # @hot_path roots pull in the whole data path.
    assert len(result.scope.roots) > 40
    assert len(result.scope.members) > len(result.scope.roots)
    # And the inventory actually tracks the system's containers.
    assert len(result.inventory.containers) > 100


def test_tree_clean_via_cli(capsys):
    code = main([str(REPO_ROOT / "src" / "repro"), "--profile", "strict"])
    out = capsys.readouterr().out
    assert code == 0, out
