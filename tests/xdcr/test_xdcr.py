"""Tests for cross datacenter replication (section 4.6)."""

import pytest

from repro import Cluster
from repro.xdcr import XdcrReplication, settle


def make_cluster(nodes, vbuckets, bucket="b"):
    cluster = Cluster(nodes=nodes, vbuckets=vbuckets)
    cluster.create_bucket(bucket)
    return cluster


@pytest.fixture
def east():
    return make_cluster(2, 16)


@pytest.fixture
def west():
    # Deliberately different topology and partition count: XDCR must be
    # topology aware (section 4.6).
    return make_cluster(3, 32)


class TestUnidirectional:
    def test_documents_replicate(self, east, west):
        XdcrReplication(east, west, "b")
        ce, cw = east.connect(), west.connect()
        for i in range(30):
            ce.upsert("b", f"k{i}", {"i": i})
        settle(east, west)
        for i in range(30):
            assert cw.get("b", f"k{i}").value == {"i": i}

    def test_metadata_preserved(self, east, west):
        XdcrReplication(east, west, "b")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "k", {"v": 1})
        ce.upsert("b", "k", {"v": 2})
        settle(east, west)
        remote = cw.get("b", "k")
        assert remote.meta.rev == 2

    def test_deletes_replicate(self, east, west):
        XdcrReplication(east, west, "b")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "k", 1)
        settle(east, west)
        ce.remove("b", "k")
        settle(east, west)
        from repro.common.errors import KeyNotFoundError
        with pytest.raises(KeyNotFoundError):
            cw.get("b", "k")

    def test_updates_flow_continuously(self, east, west):
        XdcrReplication(east, west, "b")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "k", {"gen": 1})
        settle(east, west)
        ce.upsert("b", "k", {"gen": 2})
        settle(east, west)
        assert cw.get("b", "k").value == {"gen": 2}

    def test_filtered_replication(self, east, west):
        """Per-bucket filtering by key regex (section 4.6)."""
        XdcrReplication(east, west, "b", filter_pattern=r"^eu::")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "eu::1", {"r": "eu"})
        ce.upsert("b", "us::1", {"r": "us"})
        settle(east, west)
        assert cw.get("b", "eu::1").value == {"r": "eu"}
        from repro.common.errors import KeyNotFoundError
        with pytest.raises(KeyNotFoundError):
            cw.get("b", "us::1")

    def test_different_target_bucket(self, east, west):
        west.create_bucket("archive")
        XdcrReplication(east, west, "b", target_bucket="archive")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "k", 1)
        settle(east, west)
        assert cw.get("archive", "k").value == 1

    def test_stop(self, east, west):
        link = XdcrReplication(east, west, "b")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "k1", 1)
        settle(east, west)
        link.stop()
        ce.upsert("b", "k2", 2)
        settle(east, west)
        from repro.common.errors import KeyNotFoundError
        with pytest.raises(KeyNotFoundError):
            cw.get("b", "k2")


class TestTopologyAwareness:
    def test_survives_target_failover(self, east, west):
        XdcrReplication(east, west, "b")
        ce, cw = east.connect(), west.connect()
        for i in range(20):
            ce.upsert("b", f"k{i}", {"i": i})
        settle(east, west)
        west.failover("node3")
        for i in range(20, 40):
            ce.upsert("b", f"k{i}", {"i": i})
        settle(east, west)
        for i in range(40):
            assert cw.get("b", f"k{i}").value == {"i": i}

    def test_survives_source_rebalance(self, east, west):
        XdcrReplication(east, west, "b")
        ce, cw = east.connect(), west.connect()
        for i in range(20):
            ce.upsert("b", f"k{i}", {"i": i})
        settle(east, west)
        east.add_node("node9")
        east.rebalance()
        for i in range(20, 40):
            ce.upsert("b", f"k{i}", {"i": i})
        settle(east, west)
        for i in range(40):
            assert cw.get("b", f"k{i}").value == {"i": i}


class TestConflictResolution:
    def test_most_updates_wins(self, east, west):
        """Section 4.6.1: the document with the most updates wins."""
        XdcrReplication(east, west, "b")
        XdcrReplication(west, east, "b")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "doc", {"site": "east"})
        ce.upsert("b", "doc", {"site": "east", "v": 2})  # rev 2
        cw.upsert("b", "doc", {"site": "west"})          # rev 1
        settle(east, west)
        assert ce.get("b", "doc").value == {"site": "east", "v": 2}
        assert cw.get("b", "doc").value == {"site": "east", "v": 2}

    def test_same_winner_on_both_clusters(self, east, west):
        XdcrReplication(east, west, "b")
        XdcrReplication(west, east, "b")
        ce, cw = east.connect(), west.connect()
        # Same number of updates on both sides: metadata tie-break, but
        # both clusters must pick the SAME winner.
        ce.upsert("b", "doc", {"site": "east"})
        cw.upsert("b", "doc", {"site": "west"})
        settle(east, west)
        assert ce.get("b", "doc").value == cw.get("b", "doc").value

    def test_bidirectional_convergence_bulk(self, east, west):
        XdcrReplication(east, west, "b")
        XdcrReplication(west, east, "b")
        ce, cw = east.connect(), west.connect()
        for i in range(15):
            ce.upsert("b", f"e{i}", {"from": "east", "i": i})
            cw.upsert("b", f"w{i}", {"from": "west", "i": i})
        settle(east, west)
        for i in range(15):
            assert cw.get("b", f"e{i}").value["from"] == "east"
            assert ce.get("b", f"w{i}").value["from"] == "west"

    def test_replication_does_not_bump_rev(self, east, west):
        """An applied remote mutation must keep the source's rev -- a
        ping-pong that incremented revs would never converge."""
        XdcrReplication(east, west, "b")
        XdcrReplication(west, east, "b")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "k", 1)
        settle(east, west)
        assert cw.get("b", "k").meta.rev == ce.get("b", "k").meta.rev == 1


class TestSetWithMeta:
    def test_incoming_lower_rev_rejected(self, east):
        from repro.common.document import Document, DocumentMeta
        client = east.connect()
        client.upsert("b", "k", {"local": True})
        client.upsert("b", "k", {"local": True, "v": 2})
        cluster_map = east.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("k")
        node = east.manager.nodes[cluster_map.active_node(vb)]
        stale = Document(DocumentMeta(key="k", cas=1, seqno=1, rev=1), {"remote": True})
        assert not node.engines["b"].set_with_meta(vb, stale)
        assert client.get("b", "k").value == {"local": True, "v": 2}

    def test_incoming_higher_rev_applied(self, east):
        from repro.common.document import Document, DocumentMeta
        client = east.connect()
        client.upsert("b", "k", {"local": True})
        cluster_map = east.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("k")
        node = east.manager.nodes[cluster_map.active_node(vb)]
        fresh = Document(
            DocumentMeta(key="k", cas=10**9, seqno=5, rev=9), {"remote": True}
        )
        assert node.engines["b"].set_with_meta(vb, fresh)
        doc = client.get("b", "k")
        assert doc.value == {"remote": True}
        assert doc.meta.rev == 9

    def test_exact_tie_not_applied(self, east):
        from repro.common.document import Document, DocumentMeta
        client = east.connect()
        result = client.upsert("b", "k", {"v": 1})
        cluster_map = east.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("k")
        node = east.manager.nodes[cluster_map.active_node(vb)]
        twin = Document(
            DocumentMeta(key="k", cas=result.cas, seqno=1, rev=1), {"v": 1}
        )
        assert not node.engines["b"].set_with_meta(vb, twin)


class TestDownTarget:
    """Regression: a push that fails after the stream already consumed
    the mutation must not be silently dropped.  The pump now drops the
    stream (to be reopened from seqno 0) instead of skipping the doc."""

    def test_docs_written_while_target_down_arrive_after_restart(self, east):
        west = make_cluster(1, 8)
        XdcrReplication(east, west, "b")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "before", {"phase": "before"})
        settle(east, west)
        assert cw.get("b", "before").value == {"phase": "before"}

        west.crash_node("node1")
        for i in range(10):
            ce.upsert("b", f"during{i}", {"i": i})
        # The source must quiesce even though every push fails ...
        settle(east, west)

        west.restart_node("node1")
        settle(east, west)
        # ... and nothing consumed-but-undelivered may be lost.
        for i in range(10):
            assert cw.get("b", f"during{i}").value == {"i": i}
        assert cw.get("b", "before").value == {"phase": "before"}

    def test_replay_after_reopen_does_not_regress_metadata(self, east):
        west = make_cluster(1, 8)
        XdcrReplication(east, west, "b")
        ce, cw = east.connect(), west.connect()
        ce.upsert("b", "k", {"v": 1})
        settle(east, west)
        west.crash_node("node1")
        ce.upsert("b", "k", {"v": 2})
        settle(east, west)
        west.restart_node("node1")
        settle(east, west)
        # The reopened stream replays from seqno 0; conflict resolution
        # must converge on the latest revision, not an echo of v1.
        remote = cw.get("b", "k")
        assert remote.value == {"v": 2}
        assert remote.meta.rev == 2
