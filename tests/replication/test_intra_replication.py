"""Unit-level tests for intra-cluster replication: stream lifecycle,
the lineage handshake, and the stale-replica regression the soak test
originally uncovered."""

import pytest

from repro import Cluster
from repro.common.document import Document, DocumentMeta
from repro.kv.engine import VBucketState


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=3, vbuckets=8)
    cluster.create_bucket("b", replicas=1)
    return cluster


@pytest.fixture
def client(cluster):
    return cluster.connect()


def replicator_of(cluster, node, bucket="b"):
    return cluster.manager.replicators[(node, bucket)]


class TestStreamLifecycle:
    def test_streams_follow_ownership(self, cluster, client):
        client.upsert("b", "k", 1)
        cluster.run_until_idle()
        cluster_map = cluster.manager.cluster_maps["b"]
        for name in ("node1", "node2", "node3"):
            expected = len(cluster_map.active_vbuckets_of(name))
            assert replicator_of(cluster, name).stream_count() == expected

    def test_streams_rebuilt_on_revision_change(self, cluster, client):
        client.upsert("b", "k", 1)
        cluster.run_until_idle()
        replicator = replicator_of(cluster, "node1")
        old_revision = replicator._map_revision
        cluster.manager.cluster_maps["b"].revision += 1
        cluster.manager.push_map("b")
        cluster.run_until_idle()
        assert replicator._map_revision > old_revision

    def test_replica_adopts_producer_failover_log(self, cluster, client):
        client.upsert("b", "key-x", 1)
        cluster.run_until_idle()
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("key-x")
        active = cluster_map.active_node(vb)
        replica = cluster_map.replica_nodes(vb)[0]
        producer_log = cluster.node(active).producers["b"].failover_log(vb)
        replica_vb = cluster.node(replica).engines["b"].vbuckets[vb]
        assert replica_vb.source_failover_log == producer_log


class TestLineageHandshake:
    def test_stale_lineage_replica_is_rebuilt(self, cluster, client):
        """Regression for the soak-test bug: a leftover replica whose
        data came from an *older* active lineage -- with a LOWER seqno
        than the new active -- must be detected and rebuilt, not resumed
        by raw seqno."""
        for i in range(12):
            client.upsert("b", f"k{i}", {"i": i})
        cluster.run_until_idle()
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("k0")
        active = cluster_map.active_node(vb)
        replica_name = cluster_map.replica_nodes(vb)[0]
        replica_engine = cluster.node(replica_name).engines["b"]
        # Fabricate a stale same-seqno-range copy of unknown lineage.
        replica_engine.drop_vbucket(vb)
        stale = replica_engine.create_vbucket(vb, VBucketState.REPLICA)
        replica_engine.apply_replicated(vb, Document(
            DocumentMeta(key="stale-doc", cas=5, seqno=1, rev=1),
            {"stale": True},
        ))
        assert stale.source_failover_log is None
        # Force a stream re-open.
        cluster.manager.cluster_maps["b"].revision += 1
        cluster.manager.push_map("b")
        cluster.run_until_idle()
        rebuilt = replica_engine.vbuckets[vb]
        assert rebuilt.hashtable.peek("stale-doc") is None
        # And it now carries the real content of the active.
        active_vb = cluster.node(active).engines["b"].vbuckets[vb]
        active_keys = {
            k for k, e in active_vb.hashtable.items() if not e.doc.meta.deleted
        }
        replica_keys = {
            k for k, e in rebuilt.hashtable.items() if not e.doc.meta.deleted
        }
        assert replica_keys == active_keys

    def test_lineage_survives_promotion_chain(self, cluster, client):
        """active A -> replica B promoted -> new replica C: C's adopted
        log must contain B's inherited history plus B's new branch."""
        client.upsert("b", "key-y", 1)
        cluster.run_until_idle()
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("key-y")
        active = cluster_map.active_node(vb)
        cluster.failover(active)
        cluster.rebalance()
        cluster.run_until_idle()
        new_map = cluster.manager.cluster_maps["b"]
        new_active = new_map.active_node(vb)
        log = cluster.node(new_active).producers["b"].failover_log(vb)
        assert len(log) >= 2  # inherited branch + promotion branch
        replicas = new_map.replica_nodes(vb)
        if replicas:
            replica_vb = cluster.node(replicas[0]).engines["b"].vbuckets[vb]
            assert replica_vb.source_failover_log == log

    def test_caught_up_replica_resumes_without_reset(self, cluster, client):
        client.upsert("b", "key-z", 1)
        cluster.run_until_idle()
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("key-z")
        replica_name = cluster_map.replica_nodes(vb)[0]
        replica_vb = cluster.node(replica_name).engines["b"].vbuckets[vb]
        marker = replica_vb.uuid  # object identity proxy: reset would replace it
        cluster.manager.cluster_maps["b"].revision += 1
        cluster.manager.push_map("b")
        cluster.run_until_idle()
        assert cluster.node(replica_name).engines["b"].vbuckets[vb].uuid == marker


class TestBatchedReplicaApply:
    def test_pump_coalesces_mutations_into_batch_rpcs(self, cluster, client):
        """A round of DCP messages for one vBucket travels as ONE
        kv_replica_apply_batch RPC, not one RPC per mutation."""
        cluster.run_until_idle()
        cluster.network.reset_counters()
        for i in range(40):
            client.upsert("b", f"batch-k{i}", {"i": i})
        cluster.run_until_idle()
        calls = cluster.network.calls
        batch_calls = sum(
            count for (_dst, method), count in calls.items()
            if method == "kv_replica_apply_batch"
        )
        per_doc_calls = sum(
            count for (_dst, method), count in calls.items()
            if method == "kv_apply_replicated"
        )
        assert per_doc_calls == 0
        assert 0 < batch_calls < 40

    def test_batched_replicas_converge(self, cluster, client):
        for i in range(40):
            client.upsert("b", f"conv-k{i}", i)
        cluster.run_until_idle()
        cluster_map = cluster.manager.cluster_maps["b"]
        for i in range(40):
            vb = cluster_map.vbucket_for_key(f"conv-k{i}")
            for replica in cluster_map.replica_nodes(vb):
                replica_vb = cluster.node(replica).engines["b"].vbuckets[vb]
                entry = replica_vb.hashtable.peek(f"conv-k{i}")
                assert entry is not None and entry.doc.value == i


class TestReplicationUnderLoad:
    def test_interleaved_writes_and_stream_reopens(self, cluster, client):
        for round_number in range(5):
            for i in range(10):
                client.upsert("b", f"r{round_number}-k{i}", round_number)
            cluster.manager.cluster_maps["b"].revision += 1
            cluster.manager.push_map("b")
            cluster.run_until_idle()
        # Every replica holds exactly the active data set.
        for name in ("node1", "node2", "node3"):
            engine = cluster.node(name).engines["b"]
            for vb_id in engine.owned_vbuckets(VBucketState.REPLICA):
                cluster_map = cluster.manager.cluster_maps["b"]
                active = cluster_map.active_node(vb_id)
                active_vb = cluster.node(active).engines["b"].vbuckets[vb_id]
                replica_vb = engine.vbuckets[vb_id]
                active_docs = {
                    k: e.doc.value for k, e in active_vb.hashtable.items()
                    if not e.doc.meta.deleted and not e.doc.ejected
                }
                replica_docs = {
                    k: e.doc.value for k, e in replica_vb.hashtable.items()
                    if not e.doc.meta.deleted and not e.doc.ejected
                }
                assert replica_docs == active_docs
