"""Unit tests for the durability monitor (observe-based waits)."""

import pytest

from repro import Cluster
from repro.common.errors import (
    DurabilityError,
    DurabilityImpossibleError,
)
from repro.replication.durability import (
    DurabilityMonitor,
    DurabilityRequirement,
)


class TestRequirement:
    def test_trivial(self):
        assert DurabilityRequirement().trivial
        assert not DurabilityRequirement(replicate_to=1).trivial
        assert not DurabilityRequirement(persist_to=1).trivial

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DurabilityRequirement(replicate_to=-1)
        with pytest.raises(ValueError):
            DurabilityRequirement(persist_to=-1)


class TestMonitor:
    @pytest.fixture
    def cluster(self):
        cluster = Cluster(nodes=3, vbuckets=8)
        cluster.create_bucket("b", replicas=2)
        return cluster

    def test_waits_until_replicated(self, cluster):
        client = cluster.connect()
        result = client.upsert("b", "k", {"v": 1})
        monitor = DurabilityMonitor(cluster.network, cluster.scheduler)
        monitor.wait("b", "k", result, DurabilityRequirement(replicate_to=2),
                     cluster.manager.cluster_maps["b"])
        # Both replicas must now hold the exact CAS.
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = result.vbucket_id
        for name in cluster_map.replica_nodes(vb):
            entry = cluster.node(name).engines["b"].vbuckets[vb].hashtable.peek("k")
            assert entry.doc.meta.cas == result.cas

    def test_persist_counts_active_disk(self, cluster):
        client = cluster.connect()
        result = client.upsert("b", "k", {"v": 1})
        monitor = DurabilityMonitor(cluster.network, cluster.scheduler)
        monitor.wait("b", "k", result, DurabilityRequirement(persist_to=3),
                     cluster.manager.cluster_maps["b"])
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = result.vbucket_id
        chain = [n for n in cluster_map.chains[vb] if n is not None]
        for name in chain:
            assert cluster.node(name).engines["b"].vbuckets[vb].store.contains("k")

    def test_impossible_replicate_to(self, cluster):
        client = cluster.connect()
        result = client.upsert("b", "k", {"v": 1})
        monitor = DurabilityMonitor(cluster.network, cluster.scheduler)
        with pytest.raises(DurabilityImpossibleError):
            monitor.wait("b", "k", result,
                         DurabilityRequirement(replicate_to=3),
                         cluster.manager.cluster_maps["b"])

    def test_impossible_persist_to(self, cluster):
        client = cluster.connect()
        result = client.upsert("b", "k", {"v": 1})
        monitor = DurabilityMonitor(cluster.network, cluster.scheduler)
        with pytest.raises(DurabilityImpossibleError):
            monitor.wait("b", "k", result,
                         DurabilityRequirement(persist_to=4),
                         cluster.manager.cluster_maps["b"])

    def test_unreachable_replica_fails_durability(self, cluster):
        client = cluster.connect()
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("k")
        for name in cluster_map.replica_nodes(vb):
            cluster.network.set_down(name)
        result = client._call("b", "k", "kv_upsert", {"v": 1}, 0, 0.0, 0)
        monitor = DurabilityMonitor(cluster.network, cluster.scheduler)
        with pytest.raises(DurabilityError):
            monitor.wait("b", "k", result,
                         DurabilityRequirement(replicate_to=1), cluster_map)

    def test_deletion_durability(self, cluster):
        client = cluster.connect()
        client.upsert("b", "k", {"v": 1})
        cluster.run_until_idle()
        # Waiting on the tombstone: replicas confirm via persisted delete.
        client.remove("b", "k", replicate_to=1, persist_to=1)


class TestDeletionDurability:
    """The tombstone observe path: a delete only counts as persisted
    once the tombstone itself reaches disk (a stale live version on disk
    must not satisfy persist_to), and an in-memory replica tombstone
    carrying the delete's CAS counts toward replicate_to."""

    @pytest.fixture
    def cluster(self):
        cluster = Cluster(nodes=3, vbuckets=8)
        cluster.create_bucket("b", replicas=2)
        return cluster

    def test_remove_persist_to_waits_for_tombstone_on_disk(self, cluster):
        client = cluster.connect()
        client.upsert("b", "k", {"v": 1})
        cluster.run_until_idle()  # the *live* version is now persisted
        result = client.remove("b", "k", persist_to=1)
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = result.vbucket_id
        active = cluster.node(cluster_map.chains[vb][0])
        # The active's store must hold the tombstone, not just any entry.
        assert active.engines["b"].vbuckets[vb].store.has_tombstone("k")

    def test_observe_does_not_count_stale_live_version_as_persisted_delete(
            self, cluster):
        client = cluster.connect()
        result = client.upsert("b", "k", {"v": 1})
        cluster.run_until_idle()
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = result.vbucket_id
        active = cluster.node(cluster_map.chains[vb][0])
        engine = active.engines["b"]
        engine.delete(vb, "k")  # tombstone in memory, flusher not run
        observed = engine.observe(vb, "k")
        assert not observed.exists
        assert not observed.persisted  # disk still holds the live doc
        engine.flush()
        observed = engine.observe(vb, "k")
        assert observed.persisted

    def test_in_memory_replica_tombstone_counts_as_replicated(self, cluster):
        client = cluster.connect()
        client.upsert("b", "k", {"v": 1})
        cluster.run_until_idle()
        # replicate_to=2 with both replica flushers effectively unable
        # to matter: the monitor must credit the in-memory tombstones.
        client.remove("b", "k", replicate_to=2)
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("k")
        for name in cluster_map.replica_nodes(vb):
            entry = cluster.node(name).engines["b"].vbuckets[vb].hashtable.peek("k")
            assert entry is not None and entry.doc.meta.deleted

    def test_remove_durability_through_failover(self, cluster):
        client = cluster.connect()
        result = client.upsert("b", "k", {"v": 1},
                               replicate_to=2, persist_to=3)
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = result.vbucket_id
        old_active = cluster_map.chains[vb][0]
        cluster.crash_node(old_active)
        cluster.failover(old_active)
        # The smart client refreshes its map on NOT_MY_VBUCKET/down and
        # the durability wait runs against the promoted chain.
        client.remove("b", "k", replicate_to=1, persist_to=2)
        new_map = cluster.manager.cluster_maps["b"]
        new_active = cluster.node(new_map.chains[vb][0])
        assert new_active.name != old_active
        assert new_active.engines["b"].vbuckets[vb].store.has_tombstone("k")
        replicas = [n for n in new_map.replica_nodes(vb)
                    if n != old_active]
        survivor_tombstones = sum(
            1 for name in replicas
            if (e := cluster.node(name).engines["b"].vbuckets[vb]
                .hashtable.peek("k")) is not None and e.doc.meta.deleted
        )
        assert survivor_tombstones >= 1
