"""Tests for the system catalog keyspaces and index-order sort
elimination."""

import pytest

from repro import Cluster
from repro.common.errors import N1qlSemanticError


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=2, vbuckets=16)
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for i in range(20):
        client.upsert("b", f"k{i:02d}", {"age": i, "name": f"n{i:02d}"})
    cluster.run_until_idle()
    cluster.query("CREATE INDEX by_age ON b(age) USING GSI")
    return cluster


class TestSystemKeyspaces:
    def test_system_indexes(self, cluster):
        rows = cluster.query("SELECT * FROM system:indexes").rows
        names = {row["indexes"]["name"] for row in rows}
        assert "by_age" in names

    def test_system_indexes_projection_and_filter(self, cluster):
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        rows = cluster.query(
            "SELECT idx.name FROM system:indexes idx "
            "WHERE idx.is_primary = TRUE").rows
        assert rows == [{"name": "#primary_b"}]

    def test_view_indexes_listed(self, cluster):
        cluster.query("CREATE INDEX v_name ON b(name) USING VIEW")
        rows = cluster.query(
            "SELECT idx.name, idx.storage FROM system:indexes idx "
            "WHERE idx.storage = 'view'").rows
        assert rows == [{"name": "v_name", "storage": "view"}]

    def test_system_keyspaces(self, cluster):
        rows = cluster.query("SELECT ks.name FROM system:keyspaces ks").rows
        assert rows == [{"name": "b"}]

    def test_system_nodes(self, cluster):
        rows = cluster.query(
            "SELECT n.name, n.services FROM system:nodes n "
            "ORDER BY n.name").rows
        assert [r["name"] for r in rows] == ["node1", "node2"]
        assert rows[0]["services"] == ["data", "index", "query"]

    def test_system_nodes_reflect_ejection(self, cluster):
        cluster.failover("node2")
        rows = cluster.query(
            "SELECT n.name FROM system:nodes n WHERE n.ejected = TRUE").rows
        assert rows == [{"name": "node2"}]

    def test_unknown_system_keyspace(self, cluster):
        with pytest.raises(N1qlSemanticError):
            cluster.query("SELECT * FROM system:frobs")

    def test_aggregate_over_system_keyspace(self, cluster):
        rows = cluster.query(
            "SELECT COUNT(*) AS n FROM system:nodes").rows
        assert rows[0]["n"] == 2


class TestIndexOrderElimination:
    def test_sort_eliminated_for_leading_key_order(self, cluster):
        explain = cluster.query(
            "EXPLAIN SELECT x.age FROM b x WHERE x.age > 5 ORDER BY x.age")
        ops = [c["#operator"] for c in explain.rows[0]["~children"]]
        assert "Order" not in ops
        rows = cluster.query(
            "SELECT x.age FROM b x WHERE x.age > 5 ORDER BY x.age",
            scan_consistency="request_plus").rows
        ages = [r["age"] for r in rows]
        assert ages == sorted(ages)
        assert ages[0] == 6

    def test_descending_still_sorts(self, cluster):
        explain = cluster.query(
            "EXPLAIN SELECT x.age FROM b x WHERE x.age > 5 "
            "ORDER BY x.age DESC")
        ops = [c["#operator"] for c in explain.rows[0]["~children"]]
        assert "Order" in ops

    def test_non_leading_key_still_sorts(self, cluster):
        explain = cluster.query(
            "EXPLAIN SELECT x.name FROM b x WHERE x.age > 5 "
            "ORDER BY x.name")
        ops = [c["#operator"] for c in explain.rows[0]["~children"]]
        assert "Order" in ops

    def test_group_by_disables_elimination(self, cluster):
        explain = cluster.query(
            "EXPLAIN SELECT x.age, COUNT(*) AS n FROM b x WHERE x.age > 5 "
            "GROUP BY x.age ORDER BY x.age")
        ops = [c["#operator"] for c in explain.rows[0]["~children"]]
        assert "Order" in ops

    def test_primary_scan_is_not_eliminated(self, cluster):
        cluster.query("CREATE PRIMARY INDEX pk ON b USING GSI")
        explain = cluster.query(
            "EXPLAIN SELECT x.name FROM b x WHERE x.name = 'n03' "
            "ORDER BY x.age")
        ops = [c["#operator"] for c in explain.rows[0]["~children"]]
        assert "Order" in ops

    def test_eliminated_order_matches_sorted_order(self, cluster):
        with_sort = cluster.query(
            "SELECT x.age, x.name FROM b x WHERE x.age >= 3 "
            "ORDER BY x.age, x.name",
            scan_consistency="request_plus").rows
        eliminated = cluster.query(
            "SELECT x.age, x.name FROM b x WHERE x.age >= 3 ORDER BY x.age",
            scan_consistency="request_plus").rows
        assert eliminated == with_sort  # ages are unique here
