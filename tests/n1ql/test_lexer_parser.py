"""Tests for the N1QL lexer and parser."""

import pytest

from repro.common.errors import N1qlSyntaxError
from repro.n1ql.lexer import tokenize
from repro.n1ql.parser import parse
from repro.n1ql.syntax import (
    ArrayComprehension,
    Between,
    Binary,
    CaseExpr,
    CollectionPredicate,
    CreateIndexStatement,
    CreatePrimaryIndexStatement,
    DeleteStatement,
    DropIndexStatement,
    ExplainStatement,
    FieldAccess,
    FunctionCall,
    InsertStatement,
    JoinClause,
    Literal,
    NestClause,
    Parameter,
    SelectStatement,
    UnnestClause,
    UpdateStatement,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select SELECT SeLeCt")
        assert all(t.is_keyword("SELECT") for t in tokens[:3])

    def test_strings_both_quotes(self):
        tokens = tokenize("'single' \"double\"")
        assert tokens[0].value == "single"
        assert tokens[1].value == "double"

    def test_string_escapes(self):
        assert tokenize(r"'a\'b'")[0].value == "a'b"
        assert tokenize("'it''s'")[0].value == "it's"

    def test_backtick_identifier(self):
        tokens = tokenize("`Profile Bucket`")
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "Profile Bucket"

    def test_numbers(self):
        tokens = tokenize("42 3.25 1e3 2.5e-2")
        assert [t.value for t in tokens[:4]] == [42, 3.25, 1000.0, 0.025]

    def test_params(self):
        tokens = tokenize("$1 $name ?")
        assert [t.value for t in tokens[:3]] == ["1", "name", "?"]
        assert all(t.kind == "param" for t in tokens[:3])

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- line comment\n1 /* block */ + 2")
        values = [t.value for t in tokens if t.kind != "eof"]
        assert values == ["SELECT", 1, "+", 2]

    def test_line_column_tracking(self):
        tokens = tokenize("SELECT\n  name")
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_errors(self):
        with pytest.raises(N1qlSyntaxError):
            tokenize("'unterminated")
        with pytest.raises(N1qlSyntaxError):
            tokenize("`unterminated")
        with pytest.raises(N1qlSyntaxError):
            tokenize("$ ")
        with pytest.raises(N1qlSyntaxError):
            tokenize("@")


class TestSelectParsing:
    def test_minimal(self):
        statement = parse("SELECT 1")
        assert isinstance(statement, SelectStatement)
        assert statement.from_term is None

    def test_star(self):
        statement = parse("SELECT * FROM b")
        assert statement.projections[0].expr is None
        assert statement.from_term.keyspace == "b"
        assert statement.from_term.alias == "b"

    def test_alias_star(self):
        statement = parse("SELECT p.* FROM profiles p")
        assert statement.projections[0].star_of == "p"

    def test_aliases(self):
        statement = parse("SELECT name AS n, age a FROM bucket AS b")
        assert statement.projections[0].alias == "n"
        assert statement.projections[1].alias == "a"
        assert statement.from_term.alias == "b"

    def test_raw(self):
        statement = parse("SELECT RAW name FROM b")
        assert statement.raw
        with pytest.raises(N1qlSyntaxError):
            parse("SELECT RAW a, b FROM c")

    def test_distinct(self):
        assert parse("SELECT DISTINCT x FROM b").distinct

    def test_use_keys_single(self):
        """The paper's USE KEYS example (section 3.2.3)."""
        statement = parse(
            'SELECT * FROM profiles USE KEYS "acme-uuid-1234-5678"'
        )
        assert isinstance(statement.from_term.use_keys, Literal)

    def test_use_keys_array(self):
        statement = parse(
            'SELECT * FROM profiles USE KEYS ["k1", "k2"]'
        )
        assert statement.from_term.use_keys is not None

    def test_where_precedence(self):
        statement = parse("SELECT x FROM b WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(statement.where, Binary)
        assert statement.where.op == "OR"
        assert statement.where.right.op == "AND"

    def test_join_on_keys(self):
        statement = parse(
            "SELECT * FROM orders o INNER JOIN customer c ON KEYS o.o_c_id"
        )
        join = statement.joins[0]
        assert isinstance(join, JoinClause)
        assert join.keyspace == "customer"
        assert not join.outer

    def test_left_outer_join(self):
        statement = parse(
            "SELECT * FROM a LEFT OUTER JOIN b ON KEYS a.bid"
        )
        assert statement.joins[0].outer

    def test_general_join_rejected(self):
        """Section 3.2.4: general joins are not supported linguistically."""
        with pytest.raises(N1qlSyntaxError, match="ON KEYS"):
            parse("SELECT * FROM a JOIN b ON a.x = b.y")

    def test_nest(self):
        statement = parse(
            "SELECT po.personal_details, orders FROM profiles_orders po "
            "USE KEYS 'borkar123' "
            "NEST profiles_orders AS orders "
            "ON KEYS ARRAY s.order_id FOR s IN po.shipped_order_history END"
        )
        nest = statement.joins[0]
        assert isinstance(nest, NestClause)
        assert isinstance(nest.on_keys, ArrayComprehension)

    def test_unnest(self):
        statement = parse(
            "SELECT DISTINCT categories FROM product "
            "UNNEST product.categories AS categories"
        )
        unnest = statement.joins[0]
        assert isinstance(unnest, UnnestClause)
        assert unnest.alias == "categories"

    def test_group_having(self):
        statement = parse(
            "SELECT age, COUNT(*) FROM b GROUP BY age HAVING COUNT(*) > 2"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_order_limit_offset(self):
        statement = parse(
            "SELECT x FROM b ORDER BY a DESC, b ASC LIMIT 10 OFFSET 5"
        )
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert isinstance(statement.limit, Literal)
        assert isinstance(statement.offset, Literal)

    def test_let(self):
        statement = parse("SELECT x FROM b LET y = a + 1 WHERE y > 2")
        assert statement.let_bindings[0][0] == "y"

    def test_ycsb_e_query(self):
        """The exact workload-E query from the appendix."""
        statement = parse(
            "SELECT meta().id AS id FROM `bucket` "
            "WHERE meta().id >= $1 LIMIT $2"
        )
        assert isinstance(statement.limit, Parameter)
        assert isinstance(statement.where, Binary)


class TestExpressionParsing:
    def where_of(self, condition):
        return parse(f"SELECT x FROM b WHERE {condition}").where

    def test_between(self):
        expr = self.where_of("age BETWEEN 20 AND 30")
        assert isinstance(expr, Between)

    def test_not_between(self):
        assert self.where_of("age NOT BETWEEN 1 AND 2").negated

    def test_in(self):
        expr = self.where_of("x IN [1, 2, 3]")
        assert not expr.negated

    def test_is_missing_family(self):
        assert self.where_of("x IS MISSING").what == "MISSING"
        assert self.where_of("x IS NOT NULL").negated
        assert self.where_of("x IS VALUED").what == "VALUED"

    def test_like(self):
        expr = self.where_of("name LIKE 'Di%'")
        assert expr.op == "LIKE"
        assert self.where_of("name NOT LIKE 'x%'").op == "NOT LIKE"

    def test_case(self):
        expr = self.where_of("CASE WHEN a > 1 THEN 'big' ELSE 'small' END = 'big'")
        assert isinstance(expr.left, CaseExpr)

    def test_any_satisfies(self):
        expr = self.where_of("ANY t IN tags SATISFIES t = 'urgent' END")
        assert isinstance(expr, CollectionPredicate)
        assert expr.quantifier == "ANY"

    def test_every_satisfies(self):
        expr = self.where_of("EVERY t IN tags SATISFIES t > 0 END")
        assert expr.quantifier == "EVERY"

    def test_nested_field_and_element(self):
        expr = self.where_of("a.b[0].c = 1")
        assert isinstance(expr.left, FieldAccess)

    def test_arithmetic_precedence(self):
        expr = parse("SELECT 1 + 2 * 3").projections[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_concat(self):
        expr = parse("SELECT a || b").projections[0].expr
        assert expr.op == "||"

    def test_function_calls(self):
        expr = parse("SELECT LOWER(name)").projections[0].expr
        assert isinstance(expr, FunctionCall)
        assert expr.name == "LOWER"

    def test_count_star_and_distinct(self):
        star = parse("SELECT COUNT(*)").projections[0].expr
        assert star.star
        distinct = parse("SELECT COUNT(DISTINCT a)").projections[0].expr
        assert distinct.distinct

    def test_meta_id(self):
        expr = parse("SELECT meta().id").projections[0].expr
        assert isinstance(expr, FieldAccess)
        assert expr.base.name == "META"

    def test_object_literal(self):
        expr = parse('SELECT {"a": 1, "b": [2, 3]}').projections[0].expr
        assert len(expr.pairs) == 2


class TestDmlParsing:
    def test_insert(self):
        statement = parse(
            'INSERT INTO b (KEY, VALUE) VALUES ("k1", {"a": 1})'
        )
        assert isinstance(statement, InsertStatement)
        assert not statement.upsert
        assert len(statement.values) == 1

    def test_insert_multiple_values(self):
        statement = parse(
            'INSERT INTO b (KEY, VALUE) VALUES ("k1", 1), ("k2", 2)'
        )
        assert len(statement.values) == 2

    def test_upsert(self):
        assert parse('UPSERT INTO b (KEY, VALUE) VALUES ("k", 1)').upsert

    def test_update(self):
        statement = parse(
            "UPDATE b SET a = 1, c.d = 2 UNSET e WHERE f = 3 LIMIT 2"
        )
        assert isinstance(statement, UpdateStatement)
        assert len(statement.sets) == 2
        assert len(statement.unsets) == 1

    def test_update_requires_set_or_unset(self):
        with pytest.raises(N1qlSyntaxError):
            parse("UPDATE b WHERE x = 1")

    def test_delete(self):
        statement = parse('DELETE FROM b USE KEYS "k"')
        assert isinstance(statement, DeleteStatement)
        assert statement.use_keys is not None

    def test_returning(self):
        statement = parse('DELETE FROM b WHERE x = 1 RETURNING meta(b).id')
        assert len(statement.returning) == 1


class TestDdlParsing:
    def test_create_index_gsi(self):
        """The paper's example (section 3.3.2)."""
        statement = parse("CREATE INDEX email ON `Profile` (email) USING GSI")
        assert isinstance(statement, CreateIndexStatement)
        assert statement.using == "gsi"
        assert statement.keyspace == "Profile"

    def test_create_index_view(self):
        statement = parse("CREATE INDEX email ON `Profile` (email) USING VIEW")
        assert statement.using == "view"

    def test_create_partial_index(self):
        """The over-21 example (section 3.3.4)."""
        statement = parse(
            "CREATE INDEX over21 ON `Profile`(age) WHERE age > 21 USING GSI"
        )
        assert statement.where is not None

    def test_create_index_with_options(self):
        statement = parse(
            'CREATE INDEX i ON b(x) USING GSI WITH {"defer_build": true}'
        )
        assert statement.with_options == {"defer_build": True}

    def test_create_composite(self):
        statement = parse("CREATE INDEX i ON b(country, city)")
        assert len(statement.keys) == 2

    def test_create_array_index(self):
        statement = parse(
            "CREATE INDEX tags ON b(DISTINCT ARRAY t FOR t IN tags END)"
        )
        assert isinstance(statement.keys[0], ArrayComprehension)
        assert statement.keys[0].distinct

    def test_create_primary(self):
        statement = parse("CREATE PRIMARY INDEX ON Profile USING VIEW")
        assert isinstance(statement, CreatePrimaryIndexStatement)
        assert statement.using == "view"
        assert statement.name is None

    def test_create_named_primary(self):
        statement = parse("CREATE PRIMARY INDEX profile_pk ON Profile USING GSI")
        assert statement.name == "profile_pk"

    def test_drop_index(self):
        statement = parse("DROP INDEX b.i")
        assert isinstance(statement, DropIndexStatement)
        assert statement.name == "i"

    def test_build_index(self):
        statement = parse("BUILD INDEX ON b(i1, i2)")
        assert statement.names == ["i1", "i2"]

    def test_explain(self):
        statement = parse("EXPLAIN SELECT title FROM catalog ORDER BY title")
        assert isinstance(statement, ExplainStatement)
        assert isinstance(statement.statement, SelectStatement)


class TestSyntaxErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT FROM b",
        "FROM b SELECT x",
        "SELECT x FROM",
        "SELECT x FROM b WHERE",
        "SELECT x FROM b GROUP age",
        "INSERT INTO b VALUES (1, 2)",
        "CREATE INDEX ON b(x)",
        "SELECT x FROM b trailing garbage (",
        "SELECT x x x FROM b",
    ])
    def test_rejected(self, bad):
        with pytest.raises(N1qlSyntaxError):
            parse(bad)
