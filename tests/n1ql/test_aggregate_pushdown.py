"""Partial-aggregate pushdown (IndexAggregateScan) properties.

Every pushed plan must return exactly what the unpushed plan (covering
scan + Group operator) returns, and the planner must refuse the rewrite
whenever it cannot prove the grouping keys and aggregate arguments are
index keys and nothing downstream needs more than the group keys.
"""

import pytest

from repro import Cluster
from repro.n1ql import batch
from repro.n1ql.planner import Planner


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=4, vbuckets=16)
    cluster.create_bucket("b")
    client = cluster.connect()
    for i in range(180):
        doc = {"city": ["SF", "NY", "LA", "TX"][i % 4],
               "age": 20 + i % 17,
               "score": i * 1.5}
        if i % 11 == 0:
            del doc["age"]  # MISSING second key exercises NULL/MISSING folds
        client.upsert("b", f"k{i:03d}", doc)
    cluster.run_until_idle()
    cluster.query('CREATE INDEX by_city ON b(city, age) USING GSI '
                  'WITH {"num_partitions": 3}')
    cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
    return cluster


def first_operator(cluster, text: str) -> str:
    plan = cluster.query("EXPLAIN " + text).rows[0]
    return plan["~children"][0]["#operator"]


PUSHED = [
    "SELECT city, COUNT(*) AS n, SUM(b.age) AS total, MIN(b.age) AS lo, "
    "MAX(b.age) AS hi, AVG(b.age) AS mean FROM b "
    "WHERE b.city >= 'A' GROUP BY city",
    "SELECT city, age, COUNT(*) AS n FROM b WHERE b.city >= 'A' "
    "GROUP BY city, age",
    "SELECT city, COUNT(b.age) AS n FROM b WHERE b.city = 'SF' "
    "GROUP BY city",
    "SELECT city, COUNT(*) AS n FROM b WHERE b.city >= 'A' GROUP BY city "
    "HAVING COUNT(*) > 40 ORDER BY city DESC",
    "SELECT COUNT(*) AS n, MIN(b.age) AS lo FROM b WHERE b.city = 'NY'",
    # Empty range: the global-aggregate defaults row (COUNT 0, MIN NULL).
    "SELECT COUNT(b.age) AS n, MIN(b.age) AS lo FROM b WHERE b.city = 'ZZ'",
    "SELECT COUNT(META(x).id) AS n FROM b x WHERE x.city >= 'A'",
    # Global aggregate over the covered primary index.
    "SELECT COUNT(*) AS n FROM b",
]

NOT_PUSHED = [
    # Aggregate argument is not an index key.
    "SELECT city, SUM(b.score) AS s FROM b WHERE b.city >= 'A' "
    "GROUP BY city",
    # Projection references a non-grouping field.
    "SELECT age, COUNT(*) AS n FROM b WHERE b.city >= 'A' GROUP BY city",
    # Grouping key is not a leading prefix of the index keys.
    "SELECT age, COUNT(*) AS n FROM b WHERE b.city = 'SF' GROUP BY age",
    # DISTINCT aggregates need the raw values, not a mergeable partial.
    "SELECT city, COUNT(DISTINCT b.age) AS n FROM b WHERE b.city >= 'A' "
    "GROUP BY city",
    # meta().id outside an aggregate is per-document, not per-group.
    "SELECT meta(x).id AS id, COUNT(*) AS n FROM b x WHERE x.city = 'SF' "
    "GROUP BY city",
]


@pytest.mark.parametrize("text", PUSHED)
def test_pushdown_engages(cluster, text):
    assert first_operator(cluster, text) == "IndexAggregateScan"


@pytest.mark.parametrize("text", NOT_PUSHED)
def test_pushdown_refused(cluster, text):
    assert first_operator(cluster, text) != "IndexAggregateScan"


@pytest.mark.parametrize("text", PUSHED)
@pytest.mark.parametrize("enabled", [True, False])
def test_pushed_matches_unpushed(cluster, monkeypatch, text, enabled):
    """Property: pushed plan == covering-scan + Group plan, rows and
    order, in both pipeline modes."""
    monkeypatch.setattr(batch, "BATCH_ENABLED", enabled)
    pushed = cluster.query(text, scan_consistency="request_plus").rows
    monkeypatch.setattr(Planner, "_push_group_to_index",
                        lambda self, statement, operators, aggregates: None)
    # A trailing space gives the unpushed run its own plan-cache entry.
    unpushed = cluster.query(text + " ",
                             scan_consistency="request_plus").rows
    assert pushed == unpushed


def test_rows_never_cross_the_fabric(cluster):
    """The pushed plan moves group partials, not index rows: no Fetch,
    no per-row scan traffic, one aggregate scan per partition."""
    text = ("SELECT city, COUNT(*) AS n FROM b WHERE b.city >= 'A' "
            "GROUP BY city")

    def totals(name):
        return sum(node.metrics.counter_value(name)
                   for node in cluster.manager.nodes.values())

    before = {name: totals(name) for name in
              ("n1ql.aggscan", "n1ql.fetch", "gsi.scan_rows",
               "gsi.scan_page_rows", "gsi.scan_aggregates")}
    rows = cluster.query(text, scan_consistency="request_plus").rows
    assert len(rows) == 4
    assert totals("n1ql.aggscan") - before["n1ql.aggscan"] == 1
    assert totals("n1ql.fetch") - before["n1ql.fetch"] == 0
    assert totals("gsi.scan_rows") - before["gsi.scan_rows"] == 0
    assert totals("gsi.scan_page_rows") - before["gsi.scan_page_rows"] == 0
    assert totals("gsi.scan_aggregates") - before["gsi.scan_aggregates"] == 3
