"""Batch-vectorized pipeline properties.

The batch executors of :mod:`repro.n1ql.batch` must be observationally
identical to the row pipeline -- same rows, same order, same ``n1ql.*``
operator metrics -- across the whole operator vocabulary, including the
parallel scatter-gather scan over a partitioned index and failure
propagation from a down index node.
"""

import pytest

from repro import Cluster
from repro.common.errors import NodeDownError
from repro.gsi import manager as gsi_manager
from repro.n1ql import batch, operators

#: Per-row operator counters that must match between pipelines.  Compile
#: and plan-cache counters are excluded on purpose: the second execution
#: of a query text reuses the cached, already-compiled plan.
FLOW_METRICS = [
    "n1ql.keyscan",
    "n1ql.indexscan",
    "n1ql.primaryscan",
    "n1ql.viewscan",
    "n1ql.aggscan",
    "n1ql.fetch",
    "n1ql.sorted_rows",
    "n1ql.result_rows",
]


def flow_counters(cluster) -> dict[str, int]:
    totals = dict.fromkeys(FLOW_METRICS, 0)
    for node in cluster.manager.nodes.values():
        for name in FLOW_METRICS:
            totals[name] += node.metrics.counter_value(name)
    return totals


def run_mode(cluster, monkeypatch, enabled: bool, text: str, params=None):
    monkeypatch.setattr(batch, "BATCH_ENABLED", enabled)
    before = flow_counters(cluster)
    rows = cluster.query(text, params,
                         scan_consistency="request_plus").rows
    after = flow_counters(cluster)
    return rows, {name: after[name] - before[name] for name in FLOW_METRICS}


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=4, vbuckets=16)
    cluster.create_bucket("profiles")
    cluster.create_bucket("orders")
    client = cluster.connect()
    for i in range(150):
        client.upsert("profiles", f"u{i:03d}", {
            "name": f"user{i:03d}",
            "age": 20 + i % 13,
            "city": ["SF", "NY", "LA"][i % 3],
            "order_ids": [f"o{i:03d}a", f"o{i:03d}b"],
            "categories": [f"c{i % 4}", "all"],
        })
        client.upsert("orders", f"o{i:03d}a", {"total": 10 * i})
        client.upsert("orders", f"o{i:03d}b", {"total": 5 * i})
    cluster.run_until_idle()
    cluster.query('CREATE INDEX by_age ON profiles(age, name) USING GSI '
                  'WITH {"num_partitions": 3}')
    cluster.query("CREATE PRIMARY INDEX ON profiles USING GSI")
    cluster.query("CREATE PRIMARY INDEX ON orders USING GSI")
    return cluster


CORPUS = [
    'SELECT p.name FROM profiles p USE KEYS ["u001", "u002", "u001"]',
    "SELECT name, age FROM profiles p WHERE p.age >= 22 AND p.age < 26",
    "SELECT p.city FROM profiles p WHERE p.age = 24",
    "SELECT name FROM profiles p WHERE p.city = 'SF'",
    # ORDER BY + LIMIT + OFFSET over the partitioned index.
    "SELECT name, age FROM profiles p WHERE p.age >= 20 "
    "ORDER BY p.name DESC LIMIT 7 OFFSET 3",
    # Sort elimination + LIMIT pushdown: index order, parallel merge.
    "SELECT age, name FROM profiles p WHERE p.age > 21 "
    "ORDER BY p.age LIMIT 10",
    "SELECT RAW p.age FROM profiles p WHERE p.age BETWEEN 21 AND 23",
    "SELECT DISTINCT city FROM profiles p WHERE p.age >= 20",
    "SELECT city, COUNT(*) AS n, AVG(p.age) AS mean FROM profiles p "
    "WHERE p.city != '' GROUP BY city",
    # Partial-aggregate pushdown shape (IndexAggregateScan both modes).
    "SELECT age, COUNT(*) AS n, MIN(p.name) AS lo FROM profiles p "
    "WHERE p.age >= 21 GROUP BY age",
    "SELECT COUNT(*) AS n FROM profiles p WHERE p.age > 999",
    "SELECT p.name, o.total FROM profiles p "
    "JOIN orders o ON KEYS p.order_ids WHERE p.age = 23",
    "SELECT p.name, os FROM profiles p "
    "NEST orders os ON KEYS p.order_ids WHERE p.age = 21",
    "SELECT p.name, c FROM profiles p UNNEST p.categories AS c "
    "WHERE p.age = 22",
    "SELECT 1+1 AS two",
    "SELECT s.name FROM system:indexes s",
    "SELECT meta(p).id AS id FROM profiles p WHERE meta(p).id >= 'u140'",
]


@pytest.mark.parametrize("text", CORPUS)
def test_batch_matches_row_pipeline(cluster, monkeypatch, text):
    """Same rows, same order, same operator metrics in both modes."""
    rows_batch, delta_batch = run_mode(cluster, monkeypatch, True, text)
    rows_row, delta_row = run_mode(cluster, monkeypatch, False, text)
    assert rows_batch == rows_row
    assert delta_batch == delta_row


@pytest.mark.parametrize("text", CORPUS)
def test_serial_scan_ablation_matches(cluster, monkeypatch, text):
    """PARALLEL_SCAN_ENABLED=False (concat-free serial merge) yields the
    identical stream."""
    rows_parallel, _ = run_mode(cluster, monkeypatch, True, text)
    monkeypatch.setattr(gsi_manager, "PARALLEL_SCAN_ENABLED", False)
    rows_serial, _ = run_mode(cluster, monkeypatch, True, text)
    assert rows_parallel == rows_serial


@pytest.mark.parametrize("enabled", [True, False])
def test_duplicate_keys_across_fetch_chunks(monkeypatch, enabled):
    """A key repeated past a FETCH_BATCH/BATCH_SIZE boundary is fetched
    once, and the duplicate row gets its own copy of the document."""
    cluster = Cluster(nodes=2, vbuckets=8)
    cluster.create_bucket("b")
    client = cluster.connect()
    for i in range(8):
        client.upsert("b", f"k{i}", {"v": i, "tags": ["a", "b"]})
    cluster.run_until_idle()

    monkeypatch.setattr(operators, "FETCH_BATCH", 4)
    monkeypatch.setattr(batch, "BATCH_SIZE", 4)
    monkeypatch.setattr(batch, "BATCH_ENABLED", enabled)
    fetched: list[list[str]] = []
    original = operators.ExecutionContext.fetch_docs

    def spying_fetch_docs(self, bucket, keys):
        fetched.append(list(keys))
        return original(self, bucket, keys)

    monkeypatch.setattr(operators.ExecutionContext, "fetch_docs",
                        spying_fetch_docs)

    keys = ["k0", "k1", "k2", "k3", "k4", "k5", "k0", "k2"]
    rows = cluster.query(
        "SELECT x FROM b x USE KEYS ["
        + ", ".join(f'"{k}"' for k in keys) + "]").rows
    assert [r["x"]["v"] for r in rows] == [0, 1, 2, 3, 4, 5, 0, 2]
    # Duplicates are equal but independent objects: mutating one row
    # must not reach through to the other.
    assert rows[0]["x"] == rows[6]["x"] and rows[0]["x"] is not rows[6]["x"]
    assert rows[2]["x"] == rows[7]["x"] and rows[2]["x"] is not rows[7]["x"]
    # One fetch per unique key, even across chunk boundaries.
    requested = [key for chunk in fetched for key in chunk]
    assert sorted(requested) == sorted(set(keys))


def _partitioned_cluster():
    cluster = Cluster(
        nodes=[("d1", {"data"}), ("q1", {"query"}),
               ("i1", {"index"}), ("i2", {"index"}), ("i3", {"index"})],
        vbuckets=8,
    )
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for i in range(90):
        client.upsert("b", f"k{i:03d}", {"v": i % 9, "w": i})
    cluster.run_until_idle()
    cluster.query('CREATE INDEX by_v ON b(v, w) USING GSI '
                  'WITH {"num_partitions": 3}')
    return cluster


@pytest.mark.parametrize("enabled", [True, False])
def test_index_node_down_propagates(monkeypatch, enabled):
    """A down partition must fail the scan -- and the pushed aggregate
    scan -- in both pipeline modes, never silently drop its rows."""
    cluster = _partitioned_cluster()
    cluster.network.set_down("i2")
    monkeypatch.setattr(batch, "BATCH_ENABLED", enabled)
    with pytest.raises(NodeDownError):
        cluster.query("SELECT v, w FROM b x WHERE x.v >= 0")
    with pytest.raises(NodeDownError):
        cluster.query("SELECT v, COUNT(*) AS n FROM b x WHERE x.v >= 0 "
                      "GROUP BY v")


def test_limit_short_circuit_bounds_partition_drain(monkeypatch):
    """With LIMIT k pushed into a parallel scatter-gather scan, each
    partition drains at most k + one page of rows: the merge frontier
    stops pulling once k rows are out."""
    monkeypatch.setattr(gsi_manager, "SCAN_PAGE_SIZE", 8)
    cluster = _partitioned_cluster()
    limit = 5
    index_nodes = ["i1", "i2", "i3"]
    before = {n: cluster.node(n).metrics.counter_value("gsi.scan_page_rows")
              for n in index_nodes}
    rows = cluster.query(
        f"SELECT v, w FROM b x WHERE x.v >= 0 ORDER BY x.v LIMIT {limit}",
        scan_consistency="request_plus").rows
    assert len(rows) == limit
    for name in index_nodes:
        drained = (cluster.node(name).metrics.counter_value(
            "gsi.scan_page_rows") - before[name])
        assert drained <= limit + gsi_manager.SCAN_PAGE_SIZE
