"""Extended N1QL behaviour tests: LET, CASE, collection predicates in
WHERE, LIKE sargability, BETWEEN, string/number functions in queries,
positional parameters, RETURNING shapes, and planner details."""

import pytest

from repro import Cluster
from repro.common.errors import N1qlSemanticError


@pytest.fixture(scope="class")
def cluster():
    cluster = Cluster(nodes=2, vbuckets=16)
    cluster.create_bucket("store", replicas=0)
    client = cluster.connect()
    for i in range(30):
        client.upsert("store", f"item::{i:03d}", {
            "name": f"Item {i:03d}",
            "price": float(i),
            "qty": i % 7,
            "tags": [f"t{i % 3}"] + (["sale"] if i % 5 == 0 else []),
            "maker": {"country": ["US", "DE", "JP"][i % 3]},
        })
    cluster.run_until_idle()
    cluster.query("CREATE PRIMARY INDEX ON store USING GSI")
    return cluster


RP = {"scan_consistency": "request_plus"}


class TestLetAndCase:
    def test_let_binding_in_where_and_projection(self, cluster):
        rows = cluster.query(
            "SELECT s.name, total FROM store s "
            "LET total = s.price * s.qty "
            "WHERE total > 100 ORDER BY total DESC LIMIT 3", **RP).rows
        assert len(rows) == 3
        assert rows[0]["total"] >= rows[1]["total"] >= rows[2]["total"]

    def test_case_in_projection(self, cluster):
        rows = cluster.query(
            "SELECT s.name, CASE WHEN s.price > 20 THEN 'premium' "
            "WHEN s.price > 10 THEN 'mid' ELSE 'budget' END AS tier "
            "FROM store s WHERE s.price = 25", **RP).rows
        assert rows[0]["tier"] == "premium"

    def test_case_with_group(self, cluster):
        rows = cluster.query(
            "SELECT CASE WHEN s.price >= 15 THEN 'high' ELSE 'low' END "
            "AS band, COUNT(*) AS n FROM store s GROUP BY "
            "CASE WHEN s.price >= 15 THEN 'high' ELSE 'low' END "
            "ORDER BY band", **RP).rows
        assert rows == [{"band": "high", "n": 15}, {"band": "low", "n": 15}]


class TestCollectionPredicatesInQueries:
    def test_any_satisfies_filter(self, cluster):
        rows = cluster.query(
            "SELECT meta(s).id AS id FROM store s "
            "WHERE ANY t IN s.tags SATISFIES t = 'sale' END", **RP).rows
        assert len(rows) == 6  # i % 5 == 0 for 30 items

    def test_every_satisfies_filter(self, cluster):
        rows = cluster.query(
            "SELECT meta(s).id AS id FROM store s "
            "WHERE EVERY t IN s.tags SATISFIES t != 'sale' END", **RP).rows
        assert len(rows) == 24

    def test_array_contains_function(self, cluster):
        rows = cluster.query(
            "SELECT COUNT(*) AS n FROM store s "
            "WHERE ARRAY_CONTAINS(s.tags, 't1')", **RP).rows
        assert rows[0]["n"] == 10


class TestSargability:
    def test_like_prefix_becomes_index_span(self, cluster):
        cluster.query("CREATE INDEX by_name ON store(name) USING GSI")
        explain = cluster.query(
            "EXPLAIN SELECT s.name FROM store s WHERE s.name LIKE 'Item 00%'")
        scan = explain.rows[0]["~children"][0]
        assert scan["#operator"] == "IndexScan"
        assert scan["index"] == "by_name"
        assert scan["span"]["low"] == ['"Item 00"']
        rows = cluster.query(
            "SELECT s.name FROM store s WHERE s.name LIKE 'Item 00%'",
            **RP).rows
        assert len(rows) == 10

    def test_between_becomes_index_span(self, cluster):
        cluster.query("CREATE INDEX by_price ON store(price) USING GSI")
        explain = cluster.query(
            "EXPLAIN SELECT s.price FROM store s "
            "WHERE s.price BETWEEN 5 AND 8")
        scan = explain.rows[0]["~children"][0]
        assert scan["index"] == "by_price"
        rows = cluster.query(
            "SELECT s.price FROM store s WHERE s.price BETWEEN 5 AND 8",
            **RP).rows
        assert {r["price"] for r in rows} == {5.0, 6.0, 7.0, 8.0}

    def test_non_sargable_operator_falls_back(self, cluster):
        explain = cluster.query(
            "EXPLAIN SELECT s.qty FROM store s WHERE s.qty != 3")
        assert explain.rows[0]["~children"][0]["#operator"] == "PrimaryScan"

    def test_dotted_path_index(self, cluster):
        cluster.query("CREATE INDEX by_country ON store(maker.country)")
        rows = cluster.query(
            "SELECT meta(s).id AS id FROM store s "
            "WHERE s.maker.country = 'DE'", **RP).rows
        assert len(rows) == 10
        explain = cluster.query(
            "EXPLAIN SELECT meta(s).id FROM store s "
            "WHERE s.maker.country = 'DE'")
        assert explain.rows[0]["~children"][0]["index"] == "by_country"


class TestFunctionsInQueries:
    def test_string_functions(self, cluster):
        rows = cluster.query(
            "SELECT UPPER(s.name) AS loud FROM store s "
            "WHERE LOWER(s.name) = 'item 003'", **RP).rows
        assert rows == [{"loud": "ITEM 003"}]

    def test_numeric_functions(self, cluster):
        rows = cluster.query(
            "SELECT ROUND(AVG(s.price), 2) AS mean_price, "
            "GREATEST(MIN(s.qty), 1) AS floor_qty FROM store s", **RP).rows
        assert rows[0]["mean_price"] == 14.5
        assert rows[0]["floor_qty"] == 1

    def test_array_agg(self, cluster):
        rows = cluster.query(
            "SELECT s.qty, ARRAY_AGG(s.price) AS prices FROM store s "
            "WHERE s.qty = 6 GROUP BY s.qty", **RP).rows
        assert sorted(rows[0]["prices"]) == [6.0, 13.0, 20.0, 27.0]

    def test_ifmissing_in_projection(self, cluster):
        rows = cluster.query(
            "SELECT IFMISSING(s.discount, 0) AS discount FROM store s "
            "LIMIT 1", **RP).rows
        assert rows == [{"discount": 0}]


class TestParameters:
    def test_positional_question_marks(self, cluster):
        rows = cluster.query(
            "SELECT s.name FROM store s WHERE s.price = ? OR s.price = ?",
            params=[3, 4], **RP).rows
        assert len(rows) == 2

    def test_named_parameters(self, cluster):
        rows = cluster.query(
            "SELECT s.name FROM store s WHERE s.price >= $lo AND s.price <= $hi",
            params={"lo": 1, "hi": 2}, **RP).rows
        assert len(rows) == 2

    def test_param_in_limit(self, cluster):
        rows = cluster.query(
            "SELECT s.name FROM store s LIMIT $1", params=[4], **RP).rows
        assert len(rows) == 4


class TestReturningShapes:
    def test_update_returning_expression(self, cluster):
        cluster2 = Cluster(nodes=1, vbuckets=8)
        cluster2.create_bucket("t", replicas=0)
        client = cluster2.connect()
        client.upsert("t", "a", {"n": 10})
        result = cluster2.query(
            'UPDATE t USE KEYS "a" SET t.n = t.n + 1 RETURNING t.n * 2 AS twice')
        assert result.rows == [{"twice": 22}]

    def test_insert_returning_meta(self, cluster):
        cluster2 = Cluster(nodes=1, vbuckets=8)
        cluster2.create_bucket("t", replicas=0)
        result = cluster2.query(
            'INSERT INTO t (KEY, VALUE) VALUES ("x1", {"v": 1}) '
            "RETURNING meta(t).id AS id")
        assert result.rows == [{"id": "x1"}]


class TestErrorCases:
    def test_general_join_is_semantic_error_path(self, cluster):
        from repro.common.errors import N1qlSyntaxError
        with pytest.raises(N1qlSyntaxError):
            cluster.query("SELECT * FROM store a JOIN store b ON a.x = b.y")

    def test_aggregate_in_where_rejected(self, cluster):
        with pytest.raises(N1qlSemanticError):
            cluster.query("SELECT s.name FROM store s WHERE COUNT(*) > 1",
                          **RP)

    def test_meta_of_unknown_alias(self, cluster):
        with pytest.raises(N1qlSemanticError):
            cluster.query("SELECT meta(zz).id FROM store s LIMIT 1", **RP)
