"""Tests for the ad-hoc plan cache, DDL epoch invalidation, and the
unified SELECT request accounting.

The paper notes that "query parsing and planning are done serially" per
request (section 4.5.3); the plan cache gives repeated ad-hoc statements
the prepared-statement treatment automatically, and the catalog epoch
makes sure neither cached nor prepared plans survive index/keyspace DDL.
"""

import pytest

from repro import Cluster
from repro.common.services import Service
from repro.n1ql.planner import referenced_paths
from repro.n1ql.parser import parse


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=2, vbuckets=16)
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for i in range(20):
        client.upsert("b", f"u{i:02d}", {"age": 20 + i % 5, "name": f"n{i:02d}"})
    cluster.run_until_idle()
    cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
    return cluster


def query_service(cluster):
    return cluster.service_node(Service.QUERY).query_service


class TestPlanCache:
    def test_repeat_statement_hits_cache(self, cluster):
        service = query_service(cluster)
        metrics = service.node.metrics
        text = "SELECT x.name FROM b x WHERE x.age = 22"
        first = cluster.query(text, scan_consistency="request_plus").rows
        assert metrics.counter_value("n1ql.plan_cache.miss") >= 1
        hits_before = metrics.counter_value("n1ql.plan_cache.hit")
        second = cluster.query(text, scan_consistency="request_plus").rows
        assert metrics.counter_value("n1ql.plan_cache.hit") == hits_before + 1
        assert first == second
        assert text in service.plan_cache

    def test_cached_plan_serves_new_params(self, cluster):
        """One cached plan serves every parameterization: params live on
        the per-execution evaluator, not in the compiled closures."""
        text = "SELECT COUNT(*) AS n FROM b x WHERE x.age >= $lo"
        n24 = cluster.query(text, params={"lo": 24},
                            scan_consistency="request_plus").rows[0]["n"]
        n0 = cluster.query(text, params={"lo": 0},
                           scan_consistency="request_plus").rows[0]["n"]
        assert n24 == 4
        assert n0 == 20
        metrics = query_service(cluster).node.metrics
        assert metrics.counter_value("n1ql.plan_cache.hit") >= 1

    def test_create_index_invalidates_cache(self, cluster):
        service = query_service(cluster)
        text = "SELECT x.name FROM b x WHERE x.age = 22"
        cluster.query(text, scan_consistency="request_plus")
        entry = service.plan_cache.get(text, service.catalog.current_epoch())
        assert type(entry.plan.operators[0]).__name__ == "PrimaryScan"
        cluster.query("CREATE INDEX by_age ON b(age) USING GSI")
        # The epoch moved: the stale entry is discarded at lookup and the
        # re-planned statement picks the new index.
        hits_before = service.node.metrics.counter_value("n1ql.plan_cache.hit")
        rows = cluster.query(text, scan_consistency="request_plus").rows
        assert len(rows) == 4
        assert service.node.metrics.counter_value(
            "n1ql.plan_cache.hit") == hits_before
        entry = service.plan_cache.get(text, service.catalog.current_epoch())
        scan = entry.plan.operators[0]
        assert type(scan).__name__ == "IndexScan"
        assert scan.index_name == "by_age"

    def test_drop_index_invalidates_cache(self, cluster):
        service = query_service(cluster)
        cluster.query("CREATE INDEX by_age ON b(age) USING GSI")
        text = "SELECT x.name FROM b x WHERE x.age = 21"
        cluster.query(text, scan_consistency="request_plus")
        entry = service.plan_cache.get(text, service.catalog.current_epoch())
        assert type(entry.plan.operators[0]).__name__ == "IndexScan"
        cluster.query("DROP INDEX by_age")
        # Re-running the cached statement must not scan the dead index.
        rows = cluster.query(text, scan_consistency="request_plus").rows
        assert len(rows) == 4
        entry = service.plan_cache.get(text, service.catalog.current_epoch())
        assert type(entry.plan.operators[0]).__name__ == "PrimaryScan"

    def test_lru_eviction(self, cluster):
        service = query_service(cluster)
        service.plan_cache.clear()
        service.plan_cache.capacity = 3
        statements = [f"SELECT x.name FROM b x WHERE x.age = 2{i}"
                      for i in range(5)]
        for text in statements:
            cluster.query(text)
        assert len(service.plan_cache) == 3
        # Oldest two were evicted, newest three survive.
        assert statements[0] not in service.plan_cache
        assert statements[1] not in service.plan_cache
        for text in statements[2:]:
            assert text in service.plan_cache

    def test_non_select_statements_not_cached(self, cluster):
        service = query_service(cluster)
        service.plan_cache.clear()
        cluster.query("EXPLAIN SELECT x.name FROM b x WHERE x.age = 22")
        assert len(service.plan_cache) == 0


class TestPreparedInvalidation:
    def test_execute_after_drop_index_replans(self, cluster):
        """Regression for the stale-plan bug: PREPARE against an index,
        DROP the index, EXECUTE must succeed via a fresh plan instead of
        running a dead IndexScan."""
        cluster.query("CREATE INDEX by_age ON b(age) USING GSI")
        cluster.query("PREPARE byage FROM SELECT x.name FROM b x "
                      "WHERE x.age = 22")
        service = query_service(cluster)
        assert type(service.prepared["byage"].plan.operators[0]).__name__ \
            == "IndexScan"
        cluster.query("DROP INDEX by_age")
        rows = cluster.query("EXECUTE byage",
                             scan_consistency="request_plus").rows
        assert sorted(r["name"] for r in rows) == ["n02", "n07", "n12", "n17"]
        assert type(service.prepared["byage"].plan.operators[0]).__name__ \
            == "PrimaryScan"
        assert service.node.metrics.counter_value("n1ql.prepared.replan") == 1

    def test_execute_accounting_matches_select(self, cluster):
        """Satellite: _execute_prepared and _select share one accounting
        path — both bump n1ql.selects and report resultCount."""
        service = query_service(cluster)
        metrics = service.node.metrics
        cluster.query("PREPARE acct FROM SELECT x.name FROM b x "
                      "WHERE x.age = 22")
        selects_before = metrics.counter_value("n1ql.selects")
        rows_before = metrics.counter_value("n1ql.result_rows")
        result = cluster.query("EXECUTE acct",
                               scan_consistency="request_plus")
        assert metrics.counter_value("n1ql.selects") == selects_before + 1
        assert metrics.counter_value("n1ql.result_rows") \
            == rows_before + len(result.rows)
        assert result.metrics["resultCount"] == len(result.rows)


class TestCoverageAnalysis:
    def test_join_disables_coverage(self):
        """Satellite: statements with JOINs reference whole documents, so
        coverage analysis must bail out (return None)."""
        statement = parse(
            "SELECT x.name FROM b x JOIN b y ON KEYS x.ref")
        assert referenced_paths(statement, "x") is None

    def test_plain_statement_reports_paths(self):
        statement = parse(
            "SELECT x.name FROM b x WHERE x.age > 21 ORDER BY x.city")
        assert referenced_paths(statement, "x") == {"name", "age", "city"}
