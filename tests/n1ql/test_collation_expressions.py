"""Tests for JSON collation and N1QL expression evaluation (MISSING and
NULL semantics, operators, functions)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.n1ql.collation import (
    MISSING,
    compare,
    equal,
    less,
    max_value,
    min_value,
    sort_key,
    type_rank,
)
from repro.n1ql.expressions import Env, Evaluator
from repro.n1ql.parser import Parser

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-1000, 1000)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=4), children, max_size=3),
    max_leaves=8,
)


def eval_expr(text, env=None, params=None, default_alias=None):
    parser = Parser(text)
    expr = parser.parse_expr()
    return Evaluator(params or {}, default_alias).evaluate(expr, env or Env())


class TestCollation:
    def test_type_bracket_order(self):
        """MISSING < NULL < FALSE < TRUE < number < string < array < object."""
        ladder = [MISSING, None, False, True, 0, "", [], {}]
        for i in range(len(ladder) - 1):
            assert compare(ladder[i], ladder[i + 1]) < 0

    def test_numbers_numeric(self):
        assert less(2, 10)
        assert equal(1, 1.0)

    def test_strings_codepoint(self):
        assert less("a", "b")
        assert less("Z", "a")  # uppercase before lowercase in unicode

    def test_arrays_elementwise(self):
        assert less([1, 2], [1, 3])
        assert less([1], [1, 0])
        assert equal([1, [2]], [1, [2]])

    def test_objects_by_sorted_pairs(self):
        assert equal({"a": 1, "b": 2}, {"b": 2, "a": 1})
        assert less({"a": 1}, {"a": 2})
        assert less({"a": 1}, {"b": 0})

    def test_bools_not_numbers(self):
        assert less(True, 0)

    @given(json_values, json_values)
    def test_antisymmetry(self, a, b):
        assert compare(a, b) == -compare(b, a)

    @given(json_values, json_values, json_values)
    @settings(max_examples=60)
    def test_transitivity_via_sorting(self, a, b, c):
        ordered = sorted([a, b, c], key=sort_key)
        for i in range(2):
            assert compare(ordered[i], ordered[i + 1]) <= 0

    @given(json_values)
    def test_reflexive(self, a):
        assert compare(a, a) == 0

    def test_min_max(self):
        assert max_value([1, "a", None]) == "a"
        assert min_value([1, "a", None]) is None

    def test_type_rank_rejects_garbage(self):
        with pytest.raises(TypeError):
            type_rank(object())


class TestLiteralsAndParams:
    def test_literals(self):
        assert eval_expr("42") == 42
        assert eval_expr("'hi'") == "hi"
        assert eval_expr("TRUE") is True
        assert eval_expr("NULL") is None
        assert eval_expr("MISSING") is MISSING

    def test_array_object_literals(self):
        assert eval_expr("[1, 'a', [2]]") == [1, "a", [2]]
        assert eval_expr('{"a": 1, "b": {"c": 2}}') == {"a": 1, "b": {"c": 2}}

    def test_object_literal_drops_missing(self):
        assert eval_expr('{"a": MISSING, "b": 1}') == {"b": 1}

    def test_params(self):
        assert eval_expr("$x", params={"x": 9}) == 9
        assert eval_expr("$1 + $2", params={"1": 1, "2": 2}) == 3

    def test_missing_param_raises(self):
        from repro.common.errors import N1qlSemanticError
        with pytest.raises(N1qlSemanticError):
            eval_expr("$nope")


class TestFieldAccess:
    def make_env(self):
        env = Env()
        env.bind("p", {"name": "Dipti", "address": {"zip": "94040"},
                       "tags": ["a", "b"]}, {"id": "u1", "cas": 7})
        return env

    def test_field(self):
        assert eval_expr("p.name", self.make_env()) == "Dipti"

    def test_nested(self):
        assert eval_expr("p.address.zip", self.make_env()) == "94040"

    def test_absent_is_missing(self):
        assert eval_expr("p.ghost", self.make_env()) is MISSING
        assert eval_expr("p.ghost.deeper", self.make_env()) is MISSING

    def test_element_access(self):
        assert eval_expr("p.tags[1]", self.make_env()) == "b"
        assert eval_expr("p.tags[-1]", self.make_env()) == "b"
        assert eval_expr("p.tags[9]", self.make_env()) is MISSING

    def test_default_alias_resolution(self):
        assert eval_expr("name", self.make_env(), default_alias="p") == "Dipti"

    def test_meta(self):
        assert eval_expr("meta(p).id", self.make_env()) == "u1"
        assert eval_expr("meta().cas", self.make_env(),
                         default_alias="p") == 7


class TestOperators:
    def test_arithmetic(self):
        assert eval_expr("2 + 3 * 4") == 14
        assert eval_expr("10 / 4") == 2.5
        assert eval_expr("10 % 3") == 1
        assert eval_expr("-(2 + 3)") == -5

    def test_division_by_zero_is_null(self):
        assert eval_expr("1 / 0") is None
        assert eval_expr("1 % 0") is None

    def test_arithmetic_on_non_numbers_is_null(self):
        assert eval_expr("'a' + 1") is None
        assert eval_expr("TRUE + 1") is None

    def test_arithmetic_missing_propagates(self):
        assert eval_expr("MISSING + 1") is MISSING

    def test_comparisons(self):
        assert eval_expr("1 < 2") is True
        assert eval_expr("'a' != 'b'") is True
        assert eval_expr("[1,2] = [1,2]") is True

    def test_comparison_null_missing(self):
        assert eval_expr("1 = NULL") is None
        assert eval_expr("1 = MISSING") is MISSING
        assert eval_expr("NULL = MISSING") is MISSING

    def test_and_or_truth_tables(self):
        assert eval_expr("TRUE AND FALSE") is False
        assert eval_expr("FALSE AND MISSING") is False
        assert eval_expr("TRUE AND MISSING") is MISSING
        assert eval_expr("TRUE AND NULL") is None
        assert eval_expr("FALSE OR TRUE") is True
        assert eval_expr("NULL OR MISSING") is None
        assert eval_expr("MISSING OR MISSING") is MISSING
        assert eval_expr("FALSE OR FALSE") is False

    def test_not(self):
        assert eval_expr("NOT TRUE") is False
        assert eval_expr("NOT NULL") is None
        assert eval_expr("NOT MISSING") is MISSING

    def test_concat(self):
        assert eval_expr("'a' || 'b'") == "ab"
        assert eval_expr("'a' || 1") is None

    def test_like(self):
        assert eval_expr("'Dipti' LIKE 'Di%'") is True
        assert eval_expr("'Dipti' LIKE 'D_pti'") is True
        assert eval_expr("'Dipti' NOT LIKE 'x%'") is True
        assert eval_expr("'a.b' LIKE 'a.b'") is True
        assert eval_expr("'axb' LIKE 'a.b'") is False  # dot is literal

    def test_between(self):
        assert eval_expr("5 BETWEEN 1 AND 10") is True
        assert eval_expr("5 NOT BETWEEN 6 AND 10") is True

    def test_in(self):
        assert eval_expr("2 IN [1, 2, 3]") is True
        assert eval_expr("9 NOT IN [1, 2]") is True
        assert eval_expr("1 IN 'notarray'") is None

    def test_is_family(self):
        assert eval_expr("NULL IS NULL") is True
        assert eval_expr("MISSING IS MISSING") is True
        assert eval_expr("MISSING IS NULL") is MISSING
        assert eval_expr("1 IS VALUED") is True
        assert eval_expr("NULL IS NOT VALUED") is True

    def test_case(self):
        assert eval_expr("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' END") == "b"
        assert eval_expr("CASE WHEN FALSE THEN 1 END") is None
        assert eval_expr("CASE WHEN FALSE THEN 1 ELSE 9 END") == 9


class TestCollectionConstructs:
    def make_env(self):
        env = Env()
        env.bind("doc", {"tags": ["red", "urgent", "red"],
                         "items": [{"sku": "a", "qty": 2},
                                   {"sku": "b", "qty": 0}]})
        return env

    def test_any_satisfies(self):
        env = self.make_env()
        assert eval_expr("ANY t IN doc.tags SATISFIES t = 'urgent' END", env) is True
        assert eval_expr("ANY t IN doc.tags SATISFIES t = 'green' END", env) is False

    def test_every_satisfies(self):
        env = self.make_env()
        assert eval_expr(
            "EVERY i IN doc.items SATISFIES i.qty >= 0 END", env) is True
        assert eval_expr(
            "EVERY i IN doc.items SATISFIES i.qty > 0 END", env) is False

    def test_every_empty_collection_false(self):
        env = Env()
        env.bind("doc", {"xs": []})
        assert eval_expr("EVERY x IN doc.xs SATISFIES TRUE END", env) is False

    def test_array_comprehension(self):
        env = self.make_env()
        assert eval_expr("ARRAY i.sku FOR i IN doc.items END", env) == ["a", "b"]

    def test_array_comprehension_when(self):
        env = self.make_env()
        assert eval_expr(
            "ARRAY i.sku FOR i IN doc.items WHEN i.qty > 0 END", env) == ["a"]

    def test_distinct_array(self):
        env = self.make_env()
        assert eval_expr("DISTINCT ARRAY t FOR t IN doc.tags END", env) == [
            "red", "urgent",
        ]

    def test_comprehension_over_non_array(self):
        env = self.make_env()
        assert eval_expr("ARRAY x FOR x IN doc.absent END", env) is MISSING
        assert eval_expr("ARRAY x FOR x IN 5 END", env) is None


class TestFunctions:
    def test_string_functions(self):
        assert eval_expr("LOWER('AbC')") == "abc"
        assert eval_expr("UPPER('abc')") == "ABC"
        assert eval_expr("LENGTH('abcd')") == 4
        assert eval_expr("SUBSTR('hello', 1, 3)") == "ell"
        assert eval_expr("TRIM('  x ')") == "x"
        assert eval_expr("CONTAINS('hello', 'ell')") is True
        assert eval_expr("SPLIT('a,b', ',')") == ["a", "b"]

    def test_numeric_functions(self):
        assert eval_expr("ABS(-3)") == 3
        assert eval_expr("ROUND(2.567, 1)") == 2.6
        assert eval_expr("FLOOR(2.9)") == 2
        assert eval_expr("CEIL(2.1)") == 3
        assert eval_expr("SQRT(16)") == 4
        assert eval_expr("POWER(2, 10)") == 1024

    def test_array_functions(self):
        assert eval_expr("ARRAY_LENGTH([1,2,3])") == 3
        assert eval_expr("ARRAY_CONTAINS([1,2], 2)") is True
        assert eval_expr("ARRAY_APPEND([1], 2)") == [1, 2]
        assert eval_expr("ARRAY_DISTINCT([1,1,2])") == [1, 2]

    def test_type_functions(self):
        assert eval_expr("TYPE(1)") == "number"
        assert eval_expr("TYPE('x')") == "string"
        assert eval_expr("TYPE(MISSING)") == "missing"
        assert eval_expr("TOSTRING(12)") == "12"
        assert eval_expr("TONUMBER('3.5')") == 3.5
        assert eval_expr("TONUMBER('zz')") is None

    def test_conditional_functions(self):
        assert eval_expr("IFMISSING(MISSING, 2)") == 2
        assert eval_expr("IFNULL(NULL, 3)") == 3
        assert eval_expr("IFMISSINGORNULL(MISSING, NULL, 4)") == 4
        assert eval_expr("LEAST(3, 1, 2)") == 1
        assert eval_expr("GREATEST(3, 1, 2)") == 3

    def test_missing_propagation_in_functions(self):
        assert eval_expr("LOWER(MISSING)") is MISSING
        assert eval_expr("LOWER(NULL)") is None
        assert eval_expr("LOWER(5)") is None

    def test_unknown_function(self):
        from repro.common.errors import N1qlSemanticError
        with pytest.raises(N1qlSemanticError):
            eval_expr("FROBNICATE(1)")

    def test_aggregate_outside_group_raises(self):
        from repro.common.errors import N1qlSemanticError
        with pytest.raises(N1qlSemanticError):
            eval_expr("SUM(x)")
