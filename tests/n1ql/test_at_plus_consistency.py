"""Tests for at_plus scan consistency (read-your-own-writes with
mutation tokens -- the cheap middle ground between not_bounded and
request_plus)."""

import pytest

from repro import Cluster
from repro.common.errors import N1qlSemanticError


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=2, vbuckets=16)
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for i in range(10):
        client.upsert("b", f"seed{i}", {"v": i})
    cluster.run_until_idle()
    cluster.query("CREATE INDEX by_v ON b(v) USING GSI")
    return cluster


class TestAtPlus:
    def test_sees_own_write(self, cluster):
        client = cluster.connect()
        # Direct engine write so no scheduler rounds run before the query.
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("mine")
        node = cluster.node(cluster_map.active_node(vb))
        token = node.engines["b"].upsert(vb, "mine", {"v": 999})

        stale = cluster.query("SELECT meta(x).id FROM b x WHERE x.v = 999").rows
        assert stale == []  # not_bounded misses it

        fresh = cluster.query(
            "SELECT meta(x).id AS id FROM b x WHERE x.v = 999",
            scan_consistency="at_plus",
            consistent_with=[token],
        ).rows
        assert [r["id"] for r in fresh] == ["mine"]

    def test_does_not_wait_for_unrelated_backlog(self, cluster):
        """at_plus with MY token must not require indexing OTHER pending
        mutations -- that is what distinguishes it from request_plus."""
        client = cluster.connect()
        token = client.upsert("b", "mine", {"v": 123})
        cluster.run_until_idle()
        # Pile unrelated un-indexed mutations into another vBucket.
        cluster_map = cluster.manager.cluster_maps["b"]
        other_vb = next(
            vb for vb in range(16) if vb != token.vbucket_id
        )
        node = cluster.node(cluster_map.active_node(other_vb))
        for i in range(5):
            node.engines["b"].upsert(other_vb, f"unrelated{i}", {"v": 500 + i})
        rows = cluster.query(
            "SELECT meta(x).id AS id FROM b x WHERE x.v = 123",
            scan_consistency="at_plus",
            consistent_with=[token],
        ).rows
        assert [r["id"] for r in rows] == ["mine"]
        # The unrelated backlog may legitimately still be un-indexed.

    def test_multiple_tokens(self, cluster):
        client = cluster.connect()
        cluster_map = cluster.manager.cluster_maps["b"]
        tokens = []
        for name in ("a1", "b2", "c3"):
            vb = cluster_map.vbucket_for_key(name)
            node = cluster.node(cluster_map.active_node(vb))
            tokens.append(node.engines["b"].upsert(vb, name, {"v": 777}))
        rows = cluster.query(
            "SELECT meta(x).id AS id FROM b x WHERE x.v = 777",
            scan_consistency="at_plus",
            consistent_with=tokens,
        ).rows
        assert {r["id"] for r in rows} == {"a1", "b2", "c3"}

    def test_at_plus_requires_tokens(self, cluster):
        with pytest.raises(N1qlSemanticError):
            cluster.query("SELECT 1", scan_consistency="at_plus")

    def test_gsi_scan_level_at_plus(self, cluster):
        cluster_map = cluster.manager.cluster_maps["b"]
        vb = cluster_map.vbucket_for_key("direct")
        node = cluster.node(cluster_map.active_node(vb))
        token = node.engines["b"].upsert(vb, "direct", {"v": 888})
        rows = cluster.gsi.scan("by_v", low=[888], high=[888],
                                scan_consistency="at_plus",
                                mutation_tokens=[token])
        assert [doc_id for _k, doc_id in rows] == ["direct"]
