"""Printer round-trip: printing an expression and reparsing it must
yield a semantically identical expression (same canonical print).  This
pins the EXPLAIN output format and the aggregate-matching keys."""

import pytest

from repro.n1ql.parser import Parser
from repro.n1ql.printer import path_of, print_expr
from repro.n1ql.syntax import Identifier

EXPRESSIONS = [
    "1 + 2 * 3",
    "-(a + b)",
    "a.b.c",
    "a[0].b",
    "x = 1 AND y != 2 OR NOT z",
    "name LIKE 'Di%'",
    "age BETWEEN 20 AND 30",
    "age NOT BETWEEN 20 AND 30",
    "x IN [1, 2, 3]",
    "x IS MISSING",
    "x IS NOT NULL",
    "x IS VALUED",
    "COUNT(*)",
    "COUNT(DISTINCT x)",
    "SUM(price * qty)",
    "LOWER(name) || '!'",
    "CASE WHEN a > 1 THEN 'x' ELSE 'y' END",
    "ANY t IN tags SATISFIES t = 'hot' END",
    "EVERY t IN tags SATISFIES t > 0 END",
    "ARRAY s.order_id FOR s IN history END",
    "ARRAY DISTINCT t FOR t IN tags WHEN t != 'x' END",
    '{"a": 1, "b": [TRUE, NULL]}',
    "meta(p).id",
    "$1 + $name",
    "IFMISSING(x, 0) >= GREATEST(1, 2)",
]


def parse_expr(text):
    return Parser(text).parse_expr()


class TestRoundTrip:
    @pytest.mark.parametrize("source", EXPRESSIONS)
    def test_print_parse_print_fixed_point(self, source):
        first = print_expr(parse_expr(source))
        second = print_expr(parse_expr(first))
        assert first == second


class TestPathOf:
    def test_identifier(self):
        assert path_of(parse_expr("age")) == "age"

    def test_dotted(self):
        assert path_of(parse_expr("a.b.c")) == "a.b.c"

    def test_strip_alias(self):
        assert path_of(parse_expr("p.age"), strip_alias="p") == "age"
        assert path_of(parse_expr("q.age"), strip_alias="p") == "q.age"

    def test_meta_id(self):
        assert path_of(parse_expr("meta().id")) == "meta().id"

    def test_non_paths(self):
        assert path_of(parse_expr("a + b")) is None
        assert path_of(parse_expr("LOWER(a)")) is None
        assert path_of(parse_expr("a[0]")) is None

    def test_strip_alias_of_bare_alias(self):
        # "p" stripped of alias "p" would leave nothing: not a path.
        assert path_of(Identifier("p"), strip_alias="p") is None
