"""End-to-end N1QL tests against a live cluster: access paths, joins,
NEST/UNNEST, grouping, DML, DDL, covering indexes, scan consistency, and
EXPLAIN."""

import pytest

from repro import Cluster
from repro.common.errors import (
    IndexNotFoundError,
    N1qlRuntimeError,
    N1qlSemanticError,
    NoSuitableIndexError,
)


@pytest.fixture(scope="class")
def cluster():
    cluster = Cluster(nodes=3, vbuckets=16)
    cluster.create_bucket("profiles")
    cluster.create_bucket("orders")
    client = cluster.connect()
    for i in range(40):
        client.upsert("profiles", f"u{i:02d}", {
            "doc_type": "user_profile",
            "name": f"user{i:02d}",
            "age": 20 + i % 10,
            "city": ["SF", "NY", "LA"][i % 3],
            "order_ids": [f"o{i:02d}a", f"o{i:02d}b"],
            "categories": [f"c{i % 4}", "all"],
        })
        client.upsert("orders", f"o{i:02d}a",
                      {"doc_type": "order", "total": 10 * i, "sku": f"s{i % 5}"})
        client.upsert("orders", f"o{i:02d}b",
                      {"doc_type": "order", "total": 5 * i, "sku": f"s{i % 3}"})
    cluster.run_until_idle()
    cluster.query("CREATE INDEX by_age ON profiles(age) USING GSI")
    cluster.query("CREATE PRIMARY INDEX ON profiles USING GSI")
    cluster.query("CREATE PRIMARY INDEX ON orders USING GSI")
    return cluster


@pytest.fixture
def client(cluster):
    return cluster.connect()


RP = {"scan_consistency": "request_plus"}


class TestAccessPaths:
    def test_use_keys_single(self, client):
        rows = client.query(
            'SELECT p.name FROM profiles p USE KEYS "u07"').rows
        assert rows == [{"name": "user07"}]

    def test_use_keys_multiple(self, client):
        rows = client.query(
            'SELECT p.name FROM profiles p USE KEYS ["u01", "u02"]').rows
        assert len(rows) == 2

    def test_use_keys_missing_key_skipped(self, client):
        rows = client.query(
            'SELECT p.name FROM profiles p USE KEYS ["u01", "ghost"]').rows
        assert len(rows) == 1

    def test_index_scan_equality(self, client):
        rows = client.query(
            "SELECT name FROM profiles p WHERE p.age = 25", **RP).rows
        assert len(rows) == 4
        assert all(r["name"] for r in rows)

    def test_index_scan_range(self, client):
        rows = client.query(
            "SELECT age FROM profiles p WHERE p.age >= 27 AND p.age < 29",
            **RP).rows
        assert {r["age"] for r in rows} == {27, 28}

    def test_primary_scan_fallback(self, client):
        rows = client.query(
            "SELECT name FROM profiles p WHERE p.city = 'SF'", **RP).rows
        assert len(rows) == 14

    def test_meta_id_range_uses_primary_index(self, client):
        """The YCSB workload-E query shape (appendix 10.1.2)."""
        rows = client.query(
            "SELECT meta(p).id AS id FROM profiles p "
            "WHERE meta(p).id >= $1 LIMIT $2",
            params={"1": "u30", "2": 5}, **RP).rows
        assert [r["id"] for r in rows] == ["u30", "u31", "u32", "u33", "u34"]

    def test_no_index_no_use_keys_fails(self, cluster):
        cluster.create_bucket("bare")
        with pytest.raises(NoSuitableIndexError):
            cluster.query("SELECT x FROM bare")

    def test_unknown_keyspace(self, client):
        with pytest.raises(N1qlSemanticError):
            client.query("SELECT * FROM nonexistent")


class TestProjection:
    def test_star_wraps_alias(self, client):
        rows = client.query('SELECT * FROM profiles p USE KEYS "u01"').rows
        assert rows[0]["p"]["name"] == "user01"

    def test_alias_star_splices(self, client):
        rows = client.query('SELECT p.* FROM profiles p USE KEYS "u01"').rows
        assert rows[0]["name"] == "user01"

    def test_raw(self, client):
        rows = client.query(
            'SELECT RAW p.name FROM profiles p USE KEYS "u01"').rows
        assert rows == ["user01"]

    def test_expression_projection(self, client):
        rows = client.query(
            'SELECT p.age * 2 AS double_age FROM profiles p USE KEYS "u01"'
        ).rows
        assert rows[0]["double_age"] == 42

    def test_missing_field_omitted_from_result(self, client):
        rows = client.query(
            'SELECT p.name, p.ghost FROM profiles p USE KEYS "u01"').rows
        assert "ghost" not in rows[0]

    def test_select_without_from(self, client):
        rows = client.query("SELECT 1 + 1 AS two").rows
        assert rows == [{"two": 2}]

    def test_distinct(self, client):
        rows = client.query(
            "SELECT DISTINCT p.city FROM profiles p", **RP).rows
        assert len(rows) == 3


class TestOrderingAndPagination:
    def test_order_by(self, client):
        rows = client.query(
            "SELECT name FROM profiles p WHERE p.age = 25 ORDER BY name",
            **RP).rows
        names = [r["name"] for r in rows]
        assert names == sorted(names)

    def test_order_desc(self, client):
        rows = client.query(
            "SELECT name FROM profiles p WHERE p.age = 25 "
            "ORDER BY name DESC", **RP).rows
        names = [r["name"] for r in rows]
        assert names == sorted(names, reverse=True)

    def test_order_by_projection_alias(self, client):
        rows = client.query(
            "SELECT p.age AS years FROM profiles p WHERE p.age > 26 "
            "ORDER BY years DESC LIMIT 3", **RP).rows
        assert [r["years"] for r in rows] == [29, 29, 29]

    def test_limit_offset(self, client):
        everything = client.query(
            "SELECT meta(p).id AS id FROM profiles p ORDER BY meta(p).id",
            **RP).rows
        window = client.query(
            "SELECT meta(p).id AS id FROM profiles p ORDER BY meta(p).id "
            "LIMIT 5 OFFSET 10", **RP).rows
        assert window == everything[10:15]

    def test_limit_zero(self, client):
        assert client.query(
            "SELECT name FROM profiles p LIMIT 0", **RP).rows == []

    def test_mixed_type_order(self, client):
        rows = client.query(
            "SELECT p.age FROM profiles p WHERE p.age >= 20 "
            "ORDER BY p.age LIMIT 1", **RP).rows
        assert rows[0]["age"] == 20


class TestJoins:
    def test_inner_join_on_keys(self, client):
        rows = client.query(
            'SELECT p.name, o.total FROM profiles p USE KEYS "u05" '
            "JOIN orders o ON KEYS p.order_ids").rows
        assert len(rows) == 2
        assert {r["total"] for r in rows} == {50, 25}

    def test_left_outer_join(self, client):
        client.upsert("profiles", "loner",
                      {"name": "loner", "age": 99, "order_ids": ["ghost"]})
        rows = client.query(
            'SELECT p.name, o.total FROM profiles p USE KEYS "loner" '
            "LEFT JOIN orders o ON KEYS p.order_ids").rows
        assert len(rows) == 1
        assert rows[0] == {"name": "loner"}
        client.remove("profiles", "loner")

    def test_inner_join_drops_unmatched(self, client):
        client.upsert("profiles", "loner2",
                      {"name": "loner2", "order_ids": ["ghost"]})
        rows = client.query(
            'SELECT p.name FROM profiles p USE KEYS "loner2" '
            "JOIN orders o ON KEYS p.order_ids").rows
        assert rows == []
        client.remove("profiles", "loner2")

    def test_nest_collects_array(self, client):
        """The paper's NEST example shape (section 3.2.3)."""
        rows = client.query(
            'SELECT p.name, os FROM profiles p USE KEYS "u05" '
            "NEST orders os ON KEYS p.order_ids").rows
        assert len(rows) == 1
        assert sorted(o["total"] for o in rows[0]["os"]) == [25, 50]

    def test_nest_with_array_comprehension_keys(self, client):
        rows = client.query(
            'SELECT p.name, os FROM profiles p USE KEYS "u05" '
            "NEST orders os ON KEYS ARRAY oid FOR oid IN p.order_ids END"
        ).rows
        assert len(rows[0]["os"]) == 2

    def test_unnest(self, client):
        """The paper's UNNEST example (section 3.2.3)."""
        rows = client.query(
            "SELECT DISTINCT categories FROM profiles p "
            "UNNEST p.categories AS categories", **RP).rows
        values = {r["categories"] for r in rows}
        assert values == {"c0", "c1", "c2", "c3", "all"}

    def test_unnest_repeats_parent(self, client):
        rows = client.query(
            'SELECT p.name, c FROM profiles p USE KEYS "u01" '
            "UNNEST p.categories AS c").rows
        assert len(rows) == 2
        assert all(r["name"] == "user01" for r in rows)

    def test_join_after_index_scan(self, client):
        rows = client.query(
            "SELECT p.name, o.total FROM profiles p "
            "JOIN orders o ON KEYS p.order_ids WHERE p.age = 25", **RP).rows
        assert len(rows) == 8  # 4 profiles x 2 orders


class TestGrouping:
    def test_group_count(self, client):
        rows = client.query(
            "SELECT p.city, COUNT(*) AS n FROM profiles p "
            "GROUP BY p.city ORDER BY p.city", **RP).rows
        assert rows == [{"city": "LA", "n": 13}, {"city": "NY", "n": 13},
                        {"city": "SF", "n": 14}]

    def test_aggregates(self, client):
        rows = client.query(
            "SELECT MIN(p.age) AS lo, MAX(p.age) AS hi, AVG(p.age) AS mean, "
            "SUM(p.age) AS total FROM profiles p", **RP).rows
        row = rows[0]
        assert row["lo"] == 20 and row["hi"] == 29
        assert row["total"] == sum(20 + i % 10 for i in range(40))

    def test_count_distinct(self, client):
        rows = client.query(
            "SELECT COUNT(DISTINCT p.city) AS cities FROM profiles p",
            **RP).rows
        assert rows[0]["cities"] == 3

    def test_having(self, client):
        rows = client.query(
            "SELECT p.city, COUNT(*) AS n FROM profiles p GROUP BY p.city "
            "HAVING COUNT(*) > 13", **RP).rows
        assert rows == [{"city": "SF", "n": 14}]

    def test_aggregate_over_empty_input(self, client):
        rows = client.query(
            "SELECT COUNT(*) AS n, SUM(p.age) AS s FROM profiles p "
            "WHERE p.age = 999", **RP).rows
        # COUNT over nothing is 0; SUM over nothing is NULL.
        assert rows == [{"n": 0, "s": None}]


class TestDml:
    def test_insert_and_select(self, client):
        client.query(
            'INSERT INTO profiles (KEY, VALUE) '
            'VALUES ("dml1", {"name": "dml", "age": 77})')
        rows = client.query(
            'SELECT p.name FROM profiles p USE KEYS "dml1"').rows
        assert rows == [{"name": "dml"}]
        client.query('DELETE FROM profiles p USE KEYS "dml1"')

    def test_insert_duplicate_fails(self, client):
        client.query('INSERT INTO profiles (KEY, VALUE) VALUES ("dml2", 1)')
        with pytest.raises(N1qlRuntimeError):
            client.query('INSERT INTO profiles (KEY, VALUE) VALUES ("dml2", 2)')
        client.query('DELETE FROM profiles p USE KEYS "dml2"')

    def test_upsert_overwrites(self, client):
        client.query('UPSERT INTO profiles (KEY, VALUE) VALUES ("dml3", {"v": 1})')
        client.query('UPSERT INTO profiles (KEY, VALUE) VALUES ("dml3", {"v": 2})')
        rows = client.query('SELECT p.v FROM profiles p USE KEYS "dml3"').rows
        assert rows == [{"v": 2}]
        client.query('DELETE FROM profiles p USE KEYS "dml3"')

    def test_update_with_use_keys(self, client):
        client.query('UPSERT INTO profiles (KEY, VALUE) VALUES ("dml4", {"a": 1})')
        result = client.query(
            'UPDATE profiles p USE KEYS "dml4" SET p.a = 9, p.b.c = 2')
        assert result.mutation_count == 1
        rows = client.query('SELECT p.a, p.b FROM profiles p USE KEYS "dml4"').rows
        assert rows == [{"a": 9, "b": {"c": 2}}]
        client.query('DELETE FROM profiles p USE KEYS "dml4"')

    def test_update_where(self, client):
        result = client.query(
            "UPDATE profiles p SET p.adult = TRUE WHERE p.age >= 28")
        assert result.mutation_count == 8
        rows = client.query(
            "SELECT COUNT(*) AS n FROM profiles p WHERE p.adult = TRUE",
            **RP).rows
        assert rows[0]["n"] == 8

    def test_update_unset(self, client):
        client.query("UPDATE profiles p UNSET p.adult WHERE p.adult = TRUE")
        rows = client.query(
            "SELECT COUNT(*) AS n FROM profiles p WHERE p.adult = TRUE",
            **RP).rows
        assert rows[0]["n"] == 0

    def test_delete_where_with_returning(self, client):
        client.query('UPSERT INTO profiles (KEY, VALUE) '
                     'VALUES ("dml5", {"name": "bye", "age": 101})')
        result = client.query(
            "DELETE FROM profiles p WHERE p.age = 101 RETURNING p.name",
            **RP)
        assert result.mutation_count == 1
        assert result.rows == [{"name": "bye"}]

    def test_update_limit(self, client):
        result = client.query(
            "UPDATE profiles p SET p.touched = 1 WHERE p.age = 25 LIMIT 2")
        assert result.mutation_count == 2
        client.query("UPDATE profiles p UNSET p.touched WHERE p.touched = 1")

    def test_insert_returning(self, client):
        result = client.query(
            'INSERT INTO profiles (KEY, VALUE) '
            'VALUES ("dml6", {"name": "r"}) RETURNING name')
        assert result.rows == [{"name": "r"}]
        client.query('DELETE FROM profiles p USE KEYS "dml6"')


class TestCoveringIndex:
    def test_covered_query_skips_fetch(self, cluster, client):
        """Section 5.1.2: covered queries avoid the fetch step."""
        cluster.query("CREATE INDEX cover_age_name ON profiles(age, name)")
        explain = cluster.query(
            "EXPLAIN SELECT p.name FROM profiles p WHERE p.age = 25")
        ops = [c["#operator"] for c in explain.rows[0]["~children"]]
        assert "Fetch" not in ops
        scan = explain.rows[0]["~children"][0]
        assert scan["index"] == "cover_age_name"
        assert scan["covers"]

        rows = client.query(
            "SELECT p.name FROM profiles p WHERE p.age = 25 ORDER BY p.name",
            **RP).rows
        assert len(rows) == 4
        assert all(r["name"].startswith("user") for r in rows)
        cluster.query("DROP INDEX cover_age_name")

    def test_uncovered_query_fetches(self, cluster):
        explain = cluster.query(
            "EXPLAIN SELECT p.city FROM profiles p WHERE p.age = 25")
        ops = [c["#operator"] for c in explain.rows[0]["~children"]]
        assert "Fetch" in ops


class TestExplain:
    def test_keyscan_plan(self, cluster):
        explain = cluster.query('EXPLAIN SELECT * FROM profiles USE KEYS "x"')
        assert explain.rows[0]["~children"][0]["#operator"] == "KeyScan"

    def test_indexscan_plan(self, cluster):
        explain = cluster.query(
            "EXPLAIN SELECT name FROM profiles WHERE age = 25")
        scan = explain.rows[0]["~children"][0]
        assert scan["#operator"] == "IndexScan"
        assert scan["index"] == "by_age"

    def test_primaryscan_plan(self, cluster):
        explain = cluster.query(
            "EXPLAIN SELECT name FROM profiles WHERE city = 'SF'")
        assert explain.rows[0]["~children"][0]["#operator"] == "PrimaryScan"

    def test_order_and_limit_in_plan(self, cluster):
        explain = cluster.query(
            "EXPLAIN SELECT name FROM profiles WHERE age = 1 "
            "ORDER BY name LIMIT 2")
        ops = [c["#operator"] for c in explain.rows[0]["~children"]]
        assert "Order" in ops and "Limit" in ops


class TestScanConsistency:
    def test_not_bounded_may_lag(self, cluster):
        engine = cluster.node("node1").engines["profiles"]
        vb = engine.owned_vbuckets()[0]
        engine.upsert(vb, "lagged", {"age": 888})
        rows = cluster.query(
            "SELECT name FROM profiles p WHERE p.age = 888").rows
        assert rows == []

    def test_request_plus_sees_everything(self, cluster):
        rows = cluster.query(
            "SELECT meta(p).id AS id FROM profiles p WHERE p.age = 888",
            scan_consistency="request_plus").rows
        assert [r["id"] for r in rows] == ["lagged"]
        cluster.query('DELETE FROM profiles p USE KEYS "lagged"')

    def test_invalid_consistency(self, cluster):
        with pytest.raises(N1qlSemanticError):
            cluster.query("SELECT 1", scan_consistency="bogus")


class TestDdlThroughN1ql:
    def test_create_and_drop_gsi(self, cluster):
        cluster.query("CREATE INDEX tmp_city ON profiles(city) USING GSI")
        explain = cluster.query(
            "EXPLAIN SELECT name FROM profiles WHERE city = 'SF'")
        assert explain.rows[0]["~children"][0]["index"] == "tmp_city"
        cluster.query("DROP INDEX tmp_city")
        explain = cluster.query(
            "EXPLAIN SELECT name FROM profiles WHERE city = 'SF'")
        assert explain.rows[0]["~children"][0]["#operator"] == "PrimaryScan"

    def test_partial_index_used_when_implied(self, cluster):
        cluster.query(
            "CREATE INDEX over25 ON profiles(age) WHERE age > 25 USING GSI")
        used = cluster.query(
            "EXPLAIN SELECT name FROM profiles WHERE age > 27")
        # by_age also qualifies; both are single-key, either is valid, but
        # the partial index must at least be *usable*:
        rows = cluster.query(
            "SELECT COUNT(*) AS n FROM profiles p WHERE p.age > 27",
            **RP).rows
        assert rows[0]["n"] == 8
        not_implied = cluster.query(
            "EXPLAIN SELECT name FROM profiles WHERE age > 20")
        assert not_implied.rows[0]["~children"][0]["index"] != "over25"
        cluster.query("DROP INDEX over25")

    def test_deferred_build_via_n1ql(self, cluster):
        cluster.query(
            'CREATE INDEX deferred_city ON profiles(city) USING GSI '
            'WITH {"defer_build": true}')
        meta = cluster.manager.index_registry.require("deferred_city")
        assert meta.state == "deferred"
        cluster.query("BUILD INDEX ON profiles(deferred_city)")
        assert meta.state == "ready"
        cluster.query("DROP INDEX deferred_city")

    def test_array_index_via_n1ql(self, cluster):
        cluster.query(
            "CREATE INDEX by_cat ON profiles"
            "(DISTINCT ARRAY c FOR c IN categories END) USING GSI")
        rows = cluster.gsi.scan("by_cat", low=["all"], high=["all"],
                                scan_consistency="request_plus")
        assert len(rows) == 40
        cluster.query("DROP INDEX by_cat")

    def test_view_index_via_n1ql(self, cluster):
        cluster.query("CREATE INDEX v_city ON profiles(city) USING VIEW")
        rows = cluster.query(
            "SELECT name FROM profiles p WHERE p.city = 'NY'", **RP).rows
        assert len(rows) == 13
        cluster.query("DROP INDEX v_city")

    def test_primary_index_via_view(self, cluster):
        cluster.create_bucket("viewonly")
        client2 = cluster.connect()
        for i in range(5):
            client2.upsert("viewonly", f"d{i}", {"x": i})
        cluster.query("CREATE PRIMARY INDEX ON viewonly USING VIEW")
        rows = cluster.query(
            "SELECT v.x FROM viewonly v", scan_consistency="request_plus").rows
        assert len(rows) == 5

    def test_drop_unknown_index(self, cluster):
        with pytest.raises(IndexNotFoundError):
            cluster.query("DROP INDEX ghost_index")
