"""Tests for prepared statements (plan caching) and view-index file
compaction."""

import pytest

from repro import Cluster
from repro.common.errors import N1qlSemanticError
from repro.common.disk import SimulatedDisk
from repro.views.mapreduce import ViewDefinition
from repro.views.viewindex import ViewIndex, ViewQueryParams


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=2, vbuckets=16)
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for i in range(30):
        client.upsert("b", f"u{i:02d}", {"age": 20 + i % 5, "name": f"n{i:02d}"})
    cluster.run_until_idle()
    cluster.query("CREATE INDEX by_age ON b(age) USING GSI")
    return cluster


class TestPreparedStatements:
    def test_prepare_and_execute(self, cluster):
        prepared = cluster.query(
            "PREPARE hot FROM SELECT x.name FROM b x WHERE x.age = $1")
        assert prepared.rows[0]["name"] == "hot"
        rows = cluster.query("EXECUTE hot", params={"1": 22},
                             scan_consistency="request_plus").rows
        assert len(rows) == 6
        assert all(r["name"].startswith("n") for r in rows)

    def test_execute_with_different_params(self, cluster):
        cluster.query("PREPARE q FROM SELECT COUNT(*) AS n FROM b x "
                      "WHERE x.age >= $lo")
        low = cluster.query("EXECUTE q", params={"lo": 24},
                            scan_consistency="request_plus").rows[0]["n"]
        all_of_them = cluster.query("EXECUTE q", params={"lo": 0},
                                    scan_consistency="request_plus").rows[0]["n"]
        assert low == 6
        assert all_of_them == 30

    def test_auto_named(self, cluster):
        result = cluster.query("PREPARE SELECT 1 AS one")
        name = result.rows[0]["name"]
        assert cluster.query(f"EXECUTE {name}").rows == [{"one": 1}]

    def test_execute_unknown(self, cluster):
        with pytest.raises(N1qlSemanticError):
            cluster.query("EXECUTE nonesuch")

    def test_prepare_non_select_rejected(self, cluster):
        with pytest.raises(N1qlSemanticError):
            cluster.query('PREPARE p2 FROM DELETE FROM b x USE KEYS "u01"')

    def test_prepared_plan_stable_without_ddl(self, cluster):
        """With no DDL in between, EXECUTE reuses the exact plan object
        built at PREPARE time (no silent re-planning per request)."""
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        cluster.query("PREPARE stable FROM SELECT x.name FROM b x "
                      "WHERE x.name = 'n01'")
        from repro.common.services import Service
        service = cluster.service_node(Service.QUERY).query_service
        plan_before = service.prepared["stable"][1]
        assert type(plan_before.operators[0]).__name__ == "PrimaryScan"
        for _ in range(3):
            rows = cluster.query("EXECUTE stable",
                                 scan_consistency="request_plus").rows
            assert rows == [{"name": "n01"}]
        assert service.prepared["stable"][1] is plan_before

    def test_prepared_plan_replanned_after_ddl(self, cluster):
        """Index DDL moves the catalog epoch, so the next EXECUTE
        re-plans from the stored AST — the stale-plan bug where a
        prepared IndexScan silently survived DROP INDEX is gone, and a
        better index created after PREPARE gets picked up too."""
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        cluster.query("PREPARE hotpath FROM SELECT x.name FROM b x "
                      "WHERE x.name = 'n01'")
        from repro.common.services import Service
        service = cluster.service_node(Service.QUERY).query_service
        plan_before = service.prepared["hotpath"][1]
        assert type(plan_before.operators[0]).__name__ == "PrimaryScan"
        cluster.query("CREATE INDEX by_name ON b(name) USING GSI")
        rows = cluster.query("EXECUTE hotpath",
                             scan_consistency="request_plus").rows
        assert rows == [{"name": "n01"}]
        plan_after = service.prepared["hotpath"][1]
        assert plan_after is not plan_before
        scan = plan_after.operators[0]
        assert type(scan).__name__ == "IndexScan"
        assert scan.index_name == "by_name"

    def test_prepared_faster_than_adhoc(self, cluster):
        """Skipping parse+plan must not be slower than re-doing it.

        Ad-hoc statements now hit the plan cache too, which would make
        both sides identical -- clear it each round so the ad-hoc loop
        really pays for parse+plan."""
        import time
        from repro.common.services import Service
        service = cluster.service_node(Service.QUERY).query_service
        cluster.query("PREPARE speed FROM SELECT x.name FROM b x "
                      "WHERE x.age = $1")
        n = 50
        start = time.perf_counter()
        for _ in range(n):
            service.plan_cache.clear()
            cluster.query("SELECT x.name FROM b x WHERE x.age = $1",
                          params={"1": 22})
        adhoc = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(n):
            cluster.query("EXECUTE speed", params={"1": 22})
        prepared = time.perf_counter() - start
        assert prepared < adhoc * 1.1  # at worst comparable, usually faster


class TestViewIndexCompaction:
    def make_index(self):
        definition = ViewDefinition("dd", "v", lambda d, m, e: None)
        return ViewIndex(definition, SimulatedDisk(), "v.view")

    def test_manual_compaction_shrinks_file(self):
        index = self.make_index()
        for round_number in range(200):
            index.update_doc("hot", 0, [(round_number, None)])
        before = index.log.size
        index.compact()
        assert index.log.size < before
        rows = list(index.scan(ViewQueryParams()))
        assert [r["key"] for r in rows] == [199]

    def test_compaction_preserves_reduce(self):
        definition = ViewDefinition("dd", "v", lambda d, m, e: None, "_count")
        index = ViewIndex(definition, SimulatedDisk(), "v.view")
        for i in range(50):
            index.update_doc(f"d{i}", 0, [(i, None)])
        index.compact()
        assert index.reduce(ViewQueryParams()) == 50

    def test_auto_compaction_after_threshold(self):
        index = self.make_index()
        index.COMPACT_EVERY = 100
        for round_number in range(250):
            index.update_doc("hot", 0, [(round_number, None)])
        assert index.compactions >= 2
        assert list(index.scan(ViewQueryParams()))[0]["key"] == 249

    def test_back_index_survives_compaction(self):
        index = self.make_index()
        index.update_doc("d1", 0, [("a", 1)])
        for i in range(30):
            index.update_doc("d2", 0, [(f"k{i}", i)])
        index.compact()
        index.update_doc("d1", 0, [("z", 2)])  # replaces the old row
        rows = list(index.scan(ViewQueryParams()))
        keys = [r["key"] for r in rows]
        assert "a" not in keys and "z" in keys

    def test_vbucket_masking_survives_compaction(self):
        index = self.make_index()
        index.update_doc("d1", 0, [("a", 1)])
        index.update_doc("d2", 1, [("b", 2)])
        index.compact()
        rows = list(index.scan(ViewQueryParams(), active_vbuckets={0}))
        assert [r["id"] for r in rows] == ["d1"]
