"""DML expression work is compiled once per statement, not once per row.

The regression these tests pin down: UPDATE/DELETE/INSERT used to walk
expression ASTs with the interpreter for every target row (RETURNING
projections, the WHERE re-check, SET paths and values), so the per-row
cost -- and the ``n1ql.compile.count`` delta -- grew with the row count.
Now every expression lowers once, memoized on the statement, and row
application is direct closure calls; INSERT values and DELETE targets
also ship as batched ``multi_*`` RPCs instead of one RPC per row.
"""

import pytest

from repro import Cluster

RP = {"scan_consistency": "request_plus"}


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=2, vbuckets=16)
    cluster.create_bucket("b")
    client = cluster.connect()
    for base in range(0, 120, 40):
        client.multi_upsert("b", {
            f"d{i:03d}": {"age": i, "name": f"user{i:03d}"}
            for i in range(base, base + 40)
        })
        cluster.run_until_idle()
    cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
    cluster.run_until_idle()
    return cluster


def compiles(cluster) -> int:
    return sum(node.metrics.counter_value("n1ql.compile.count")
               for node in cluster.manager.nodes.values())


def multi_mutates(cluster) -> int:
    return sum(
        engine.metrics.counter_value("kv.multi_mutates")
        for node in cluster.manager.nodes.values()
        for engine in node.engines.values()
    )


def run(cluster, text):
    before = compiles(cluster)
    result = cluster.query(text, scan_consistency="request_plus")
    return result, compiles(cluster) - before


class TestCompileCountFlatInRows:
    def test_update_compiles_independent_of_row_count(self, cluster):
        # Different thresholds force two distinct statements (no plan
        # cache hit) that touch ~10x different row counts.
        small, small_delta = run(
            cluster, "UPDATE b SET b.flag = b.age + 1 WHERE b.age < 10")
        large, large_delta = run(
            cluster, "UPDATE b SET b.flag = b.age + 1 WHERE b.age < 110")
        assert small.mutation_count == 10
        assert large.mutation_count == 110
        assert small_delta == large_delta
        assert 0 < large_delta < 20

    def test_update_returning_compiles_once(self, cluster):
        small, small_delta = run(
            cluster,
            "UPDATE b SET b.tag = 1 WHERE b.age < 8 "
            "RETURNING b.name, b.age + 100")
        large, large_delta = run(
            cluster,
            "UPDATE b SET b.tag = 1 WHERE b.age < 108 "
            "RETURNING b.name, b.age + 100")
        assert len(small.rows) == 8
        assert len(large.rows) == 108
        assert small_delta == large_delta

    def test_insert_values_compile_linear_in_values_not_rewalked(
            self, cluster):
        # Each VALUES entry compiles its key and value expression
        # exactly once; re-walking would show up as a larger delta.
        _result, delta = run(
            cluster,
            'INSERT INTO b (KEY, VALUE) VALUES '
            + ", ".join(f'("ins{i}", {{"v": {i}}})' for i in range(12)))
        cleanup = ", ".join(f'"ins{i}"' for i in range(12))
        cluster.query(f"DELETE FROM b USE KEYS [{cleanup}]")
        # 12 keys + 12 values, plus the RETURNING-free statement's fixed
        # overhead of zero: nothing proportional to anything else.
        assert delta == 24


class TestDmlBatchedRpcs:
    def test_insert_values_is_one_batch_not_n_rpcs(self, cluster):
        before = multi_mutates(cluster)
        cluster.query(
            'INSERT INTO b (KEY, VALUE) VALUES '
            + ", ".join(f'("bat{i}", {{"v": {i}}})' for i in range(30)))
        # One kv_multi_mutate per involved node (2 nodes), not 30.
        assert multi_mutates(cluster) - before <= 2
        cleanup = ", ".join(f'"bat{i}"' for i in range(30))
        cluster.query(f"DELETE FROM b USE KEYS [{cleanup}]")

    def test_delete_where_is_one_batch_not_n_rpcs(self, cluster):
        client = cluster.connect()
        client.multi_upsert("b", {
            f"del{i:02d}": {"age": 500 + i} for i in range(40)})
        cluster.run_until_idle()
        before = multi_mutates(cluster)
        result = cluster.query(
            "DELETE FROM b WHERE b.age >= 500", **RP)
        assert result.mutation_count == 40
        assert multi_mutates(cluster) - before <= 2

    def test_upsert_statement_overwrites_in_batch(self, cluster):
        cluster.query(
            'UPSERT INTO b (KEY, VALUE) VALUES ("up1", {"v": 1}), '
            '("up2", {"v": 2})')
        cluster.query(
            'UPSERT INTO b (KEY, VALUE) VALUES ("up1", {"v": 9}), '
            '("up2", {"v": 8})')
        rows = cluster.query(
            'SELECT b.v FROM b USE KEYS ["up1", "up2"]').rows
        assert rows == [{"v": 9}, {"v": 8}]
        cluster.query('DELETE FROM b USE KEYS ["up1", "up2"]')
