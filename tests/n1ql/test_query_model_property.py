"""Property-based N1QL tests against an independent Python model.

For random documents and random WHERE predicates, the N1QL engine must
return exactly the rows a straightforward Python evaluation of the same
predicate returns -- and it must return the *same* rows no matter which
access path the planner picks (primary scan vs. secondary index scan),
since index selection is supposed to be invisible to correctness.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.n1ql.collation import MISSING
from repro.n1ql.compile import compile_expr
from repro.n1ql.expressions import Env, Evaluator
from repro.n1ql.parser import parse

# -- document and predicate generators ---------------------------------------

documents = st.lists(
    st.fixed_dictionaries(
        {"a": st.integers(0, 20)},
        optional={
            "b": st.sampled_from(["red", "green", "blue"]),
            "c": st.integers(-5, 5),
        },
    ),
    min_size=0,
    max_size=12,
)


@st.composite
def leaf_predicates(draw):
    field = draw(st.sampled_from(["a", "b", "c"]))
    if field == "b":
        op = draw(st.sampled_from(["=", "!="]))
        value = draw(st.sampled_from(["red", "green", "blue"]))
        literal = f"'{value}'"
    else:
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        value = draw(st.integers(-6, 21))
        literal = str(value)
    return {"kind": "cmp", "field": field, "op": op, "value": value,
            "n1ql": f"x.{field} {op} {literal}"}


@st.composite
def predicates(draw):
    shape = draw(st.sampled_from(["leaf", "and", "or", "missing"]))
    if shape == "leaf":
        return draw(leaf_predicates())
    if shape == "missing":
        field = draw(st.sampled_from(["b", "c"]))
        negated = draw(st.booleans())
        word = "IS NOT MISSING" if negated else "IS MISSING"
        return {"kind": "missing", "field": field, "negated": negated,
                "n1ql": f"x.{field} {word}"}
    left = draw(leaf_predicates())
    right = draw(leaf_predicates())
    word = shape.upper()
    return {"kind": shape, "left": left, "right": right,
            "n1ql": f"({left['n1ql']}) {word} ({right['n1ql']})"}


# -- the independent model ------------------------------------------------------

_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def model_matches(predicate, doc) -> bool:
    """Ground truth: N1QL keeps a row only when the predicate is exactly
    TRUE; a comparison against an absent field is MISSING (not true)."""
    kind = predicate["kind"]
    if kind == "cmp":
        if predicate["field"] not in doc:
            return False
        actual = doc[predicate["field"]]
        expected = predicate["value"]
        if isinstance(actual, str) != isinstance(expected, str):
            return False  # cross-type comparisons never match here
        return _OPS[predicate["op"]](actual, expected)
    if kind == "missing":
        absent = predicate["field"] not in doc
        return (not absent) if predicate["negated"] else absent
    left = model_matches(predicate["left"], doc)
    right = model_matches(predicate["right"], doc)
    return (left and right) if kind == "and" else (left or right)


def build_cluster(docs):
    cluster = Cluster(nodes=2, vbuckets=8)
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for index, doc in enumerate(docs):
        client.upsert("b", f"doc{index:03d}", doc)
    cluster.run_until_idle()
    return cluster


class TestWherePredicates:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents, predicates())
    def test_matches_model_via_primary_scan(self, docs, predicate):
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        rows = cluster.query(
            f"SELECT meta(x).id AS id FROM b x WHERE {predicate['n1ql']}",
            scan_consistency="request_plus",
        ).rows
        got = {row["id"] for row in rows}
        expected = {
            f"doc{index:03d}" for index, doc in enumerate(docs)
            if model_matches(predicate, doc)
        }
        assert got == expected

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents, leaf_predicates())
    def test_access_path_independence(self, docs, predicate):
        """The same query answered via PrimaryScan and via a secondary
        IndexScan must return identical rows."""
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        query = (f"SELECT meta(x).id AS id FROM b x "
                 f"WHERE {predicate['n1ql']}")
        via_primary = {
            r["id"] for r in cluster.query(
                query, scan_consistency="request_plus").rows
        }
        # Now add the secondary index; equality/range conjuncts on the
        # field become index scans.
        cluster.query(
            f"CREATE INDEX sec ON b({predicate['field']}) USING GSI")
        explain = cluster.query("EXPLAIN " + query)
        scan_op = explain.rows[0]["~children"][0]
        via_secondary = {
            r["id"] for r in cluster.query(
                query, scan_consistency="request_plus").rows
        }
        assert via_primary == via_secondary
        # Sanity: sargable operators actually switched the access path.
        if predicate["op"] in ("=", "<", "<=", ">", ">="):
            assert scan_op["#operator"] == "IndexScan"
            assert scan_op["index"] == "sec"

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents)
    def test_count_star_matches_len(self, docs):
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        rows = cluster.query(
            "SELECT COUNT(*) AS n FROM b x",
            scan_consistency="request_plus",
        ).rows
        assert rows[0]["n"] == len(docs)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents, st.integers(0, 5), st.integers(0, 5))
    def test_order_limit_offset_window(self, docs, limit, offset):
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        everything = cluster.query(
            "SELECT meta(x).id AS id, x.a FROM b x ORDER BY x.a, meta(x).id",
            scan_consistency="request_plus",
        ).rows
        window = cluster.query(
            "SELECT meta(x).id AS id, x.a FROM b x ORDER BY x.a, meta(x).id "
            f"LIMIT {limit} OFFSET {offset}",
            scan_consistency="request_plus",
        ).rows
        assert window == everything[offset:offset + limit]
        model = sorted(
            (doc.get("a"), f"doc{i:03d}") for i, doc in enumerate(docs)
        )
        assert [row["id"] for row in everything] == [key for _a, key in model]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents)
    def test_group_by_matches_model(self, docs):
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        rows = cluster.query(
            "SELECT x.a, COUNT(*) AS n FROM b x GROUP BY x.a ORDER BY x.a",
            scan_consistency="request_plus",
        ).rows
        from collections import Counter
        model = Counter(doc["a"] for doc in docs)
        assert {(r["a"], r["n"]) for r in rows} == set(model.items())


# -- compiled vs. interpreted expression evaluation ----------------------------
#
# The expression compiler (n1ql/compile.py) lowers ASTs into closures
# once per plan.  It must be *observationally identical* to the tree-
# walking Evaluator, including the MISSING/NULL discipline and exact
# result types (True is not 1; 2 is not 2.0).

@st.composite
def scalar_expressions(draw, depth=0):
    """Random N1QL scalar expression strings over fields of alias x.

    ``x.a`` is always an int, ``x.b``/``x.c`` are sometimes absent, and
    ``x.d`` never exists -- so MISSING propagation is exercised
    constantly, not just at the fringes.
    """
    # No negative literals: "-3" under a NOT/negation shape would lex
    # "--" as a line comment.  Negative values come from the neg shape.
    leaves = ["x.a", "x.b", "x.c", "x.d", "7", "3", "2.5", "'red'",
              "'zz'", "NULL", "TRUE", "FALSE"]
    if depth >= 3:
        return draw(st.sampled_from(leaves))
    shape = draw(st.sampled_from(
        ["leaf", "leaf", "arith", "cmp", "and", "or", "not", "neg",
         "is", "between", "in", "concat", "case"]))
    if shape == "leaf":
        return draw(st.sampled_from(leaves))
    sub = scalar_expressions(depth=depth + 1)
    if shape == "arith":
        op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
        return f"({draw(sub)} {op} {draw(sub)})"
    if shape == "cmp":
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        return f"({draw(sub)} {op} {draw(sub)})"
    if shape in ("and", "or"):
        return f"({draw(sub)} {shape.upper()} {draw(sub)})"
    if shape == "not":
        return f"(NOT {draw(sub)})"
    if shape == "neg":
        return f"(-{draw(sub)})"
    if shape == "is":
        word = draw(st.sampled_from(
            ["IS MISSING", "IS NOT MISSING", "IS NULL", "IS NOT NULL",
             "IS VALUED"]))
        return f"({draw(sub)} {word})"
    if shape == "between":
        return f"({draw(sub)} BETWEEN {draw(sub)} AND {draw(sub)})"
    if shape == "in":
        items = ", ".join(draw(st.lists(sub, min_size=1, max_size=3)))
        return f"({draw(sub)} IN [{items}])"
    if shape == "concat":
        return f"({draw(sub)} || {draw(sub)})"
    when = draw(sub)
    then = draw(sub)
    otherwise = draw(sub)
    return f"(CASE WHEN {when} THEN {then} ELSE {otherwise} END)"


expression_documents = st.fixed_dictionaries(
    {"a": st.integers(-5, 20)},
    optional={
        "b": st.sampled_from(["red", "green", "blue"]),
        "c": st.integers(-5, 5),
    },
)


class TestCompiledMatchesInterpreted:
    @settings(max_examples=300, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(expression_documents, scalar_expressions())
    def test_compiled_equals_interpreted(self, doc, text):
        statement = parse(f"SELECT {text} AS v FROM b x")
        expr = statement.projections[0].expr
        evaluator = Evaluator({}, default_alias="x")

        def fresh_env():
            env = Env()
            env.bind("x", dict(doc), {"id": "d1"})
            return env

        interpreted = evaluator.evaluate(expr, fresh_env())
        compiled = compile_expr(expr, "x")
        got = compiled(fresh_env(), evaluator)
        # MISSING must stay the sentinel (never collapse to None), and
        # result types must match exactly (bool vs int, int vs float).
        assert (got is MISSING) == (interpreted is MISSING)
        if interpreted is not MISSING:
            assert type(got) is type(interpreted)
            assert got == interpreted

    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(expression_documents, scalar_expressions())
    def test_compiled_predicate_verdict_matches(self, doc, text):
        """WHERE keeps a row only on exact TRUE; the compiled predicate
        must reach the same verdict as the interpreter for every
        expression, including non-boolean and MISSING results."""
        statement = parse(f"SELECT x.a FROM b x WHERE {text}")
        condition = statement.where
        evaluator = Evaluator({}, default_alias="x")
        env = Env()
        env.bind("x", dict(doc), {"id": "d1"})
        interpreted = evaluator.evaluate(condition, env) is True
        compiled = compile_expr(condition, "x")
        assert (compiled(env, evaluator) is True) == interpreted
