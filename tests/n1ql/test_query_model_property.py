"""Property-based N1QL tests against an independent Python model.

For random documents and random WHERE predicates, the N1QL engine must
return exactly the rows a straightforward Python evaluation of the same
predicate returns -- and it must return the *same* rows no matter which
access path the planner picks (primary scan vs. secondary index scan),
since index selection is supposed to be invisible to correctness.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster

# -- document and predicate generators ---------------------------------------

documents = st.lists(
    st.fixed_dictionaries(
        {"a": st.integers(0, 20)},
        optional={
            "b": st.sampled_from(["red", "green", "blue"]),
            "c": st.integers(-5, 5),
        },
    ),
    min_size=0,
    max_size=12,
)


@st.composite
def leaf_predicates(draw):
    field = draw(st.sampled_from(["a", "b", "c"]))
    if field == "b":
        op = draw(st.sampled_from(["=", "!="]))
        value = draw(st.sampled_from(["red", "green", "blue"]))
        literal = f"'{value}'"
    else:
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        value = draw(st.integers(-6, 21))
        literal = str(value)
    return {"kind": "cmp", "field": field, "op": op, "value": value,
            "n1ql": f"x.{field} {op} {literal}"}


@st.composite
def predicates(draw):
    shape = draw(st.sampled_from(["leaf", "and", "or", "missing"]))
    if shape == "leaf":
        return draw(leaf_predicates())
    if shape == "missing":
        field = draw(st.sampled_from(["b", "c"]))
        negated = draw(st.booleans())
        word = "IS NOT MISSING" if negated else "IS MISSING"
        return {"kind": "missing", "field": field, "negated": negated,
                "n1ql": f"x.{field} {word}"}
    left = draw(leaf_predicates())
    right = draw(leaf_predicates())
    word = shape.upper()
    return {"kind": shape, "left": left, "right": right,
            "n1ql": f"({left['n1ql']}) {word} ({right['n1ql']})"}


# -- the independent model ------------------------------------------------------

_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def model_matches(predicate, doc) -> bool:
    """Ground truth: N1QL keeps a row only when the predicate is exactly
    TRUE; a comparison against an absent field is MISSING (not true)."""
    kind = predicate["kind"]
    if kind == "cmp":
        if predicate["field"] not in doc:
            return False
        actual = doc[predicate["field"]]
        expected = predicate["value"]
        if isinstance(actual, str) != isinstance(expected, str):
            return False  # cross-type comparisons never match here
        return _OPS[predicate["op"]](actual, expected)
    if kind == "missing":
        absent = predicate["field"] not in doc
        return (not absent) if predicate["negated"] else absent
    left = model_matches(predicate["left"], doc)
    right = model_matches(predicate["right"], doc)
    return (left and right) if kind == "and" else (left or right)


def build_cluster(docs):
    cluster = Cluster(nodes=2, vbuckets=8)
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for index, doc in enumerate(docs):
        client.upsert("b", f"doc{index:03d}", doc)
    cluster.run_until_idle()
    return cluster


class TestWherePredicates:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents, predicates())
    def test_matches_model_via_primary_scan(self, docs, predicate):
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        rows = cluster.query(
            f"SELECT meta(x).id AS id FROM b x WHERE {predicate['n1ql']}",
            scan_consistency="request_plus",
        ).rows
        got = {row["id"] for row in rows}
        expected = {
            f"doc{index:03d}" for index, doc in enumerate(docs)
            if model_matches(predicate, doc)
        }
        assert got == expected

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents, leaf_predicates())
    def test_access_path_independence(self, docs, predicate):
        """The same query answered via PrimaryScan and via a secondary
        IndexScan must return identical rows."""
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        query = (f"SELECT meta(x).id AS id FROM b x "
                 f"WHERE {predicate['n1ql']}")
        via_primary = {
            r["id"] for r in cluster.query(
                query, scan_consistency="request_plus").rows
        }
        # Now add the secondary index; equality/range conjuncts on the
        # field become index scans.
        cluster.query(
            f"CREATE INDEX sec ON b({predicate['field']}) USING GSI")
        explain = cluster.query("EXPLAIN " + query)
        scan_op = explain.rows[0]["~children"][0]
        via_secondary = {
            r["id"] for r in cluster.query(
                query, scan_consistency="request_plus").rows
        }
        assert via_primary == via_secondary
        # Sanity: sargable operators actually switched the access path.
        if predicate["op"] in ("=", "<", "<=", ">", ">="):
            assert scan_op["#operator"] == "IndexScan"
            assert scan_op["index"] == "sec"

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents)
    def test_count_star_matches_len(self, docs):
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        rows = cluster.query(
            "SELECT COUNT(*) AS n FROM b x",
            scan_consistency="request_plus",
        ).rows
        assert rows[0]["n"] == len(docs)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents, st.integers(0, 5), st.integers(0, 5))
    def test_order_limit_offset_window(self, docs, limit, offset):
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        everything = cluster.query(
            "SELECT meta(x).id AS id, x.a FROM b x ORDER BY x.a, meta(x).id",
            scan_consistency="request_plus",
        ).rows
        window = cluster.query(
            "SELECT meta(x).id AS id, x.a FROM b x ORDER BY x.a, meta(x).id "
            f"LIMIT {limit} OFFSET {offset}",
            scan_consistency="request_plus",
        ).rows
        assert window == everything[offset:offset + limit]
        model = sorted(
            (doc.get("a"), f"doc{i:03d}") for i, doc in enumerate(docs)
        )
        assert [row["id"] for row in everything] == [key for _a, key in model]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(documents)
    def test_group_by_matches_model(self, docs):
        cluster = build_cluster(docs)
        cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
        rows = cluster.query(
            "SELECT x.a, COUNT(*) AS n FROM b x GROUP BY x.a ORDER BY x.a",
            scan_consistency="request_plus",
        ).rows
        from collections import Counter
        model = Counter(doc["a"] for doc in docs)
        assert {(r["a"], r["n"]) for r in rows} == set(model.items())
