"""Tests for the YCSB harness: generators, workloads, client adapter,
and the MVA throughput model."""

import pytest

from repro import Cluster
from repro.ycsb import (
    CoreWorkload,
    CounterGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    YcsbClient,
    ZipfianGenerator,
    fnv_hash_64,
    mva_throughput,
    seidmann_extra_delay,
    sweep_threads,
    workload_a,
    workload_e,
    workload_f,
)
from repro.ycsb.workload import WORKLOADS, WorkloadConfig


class TestGenerators:
    def test_uniform_in_range(self):
        gen = UniformGenerator(5, 10, seed=1)
        values = {gen.next() for _ in range(500)}
        assert values <= set(range(5, 11))
        assert len(values) == 6

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformGenerator(10, 5)

    def test_counter(self):
        gen = CounterGenerator(100)
        assert [gen.next() for _ in range(3)] == [100, 101, 102]
        assert gen.last() == 102

    def test_zipfian_skew(self):
        """Item 0 must be drawn far more often than the median item."""
        gen = ZipfianGenerator(1000, seed=3)
        counts = [0] * 1000
        for _ in range(20_000):
            counts[gen.next()] += 1
        assert counts[0] > 20_000 * 0.05
        assert counts[0] > 50 * counts[500] or counts[500] == 0

    def test_zipfian_range(self):
        gen = ZipfianGenerator(50, seed=9)
        assert all(0 <= gen.next() < 50 for _ in range(2000))

    def test_zipfian_deterministic(self):
        a = [ZipfianGenerator(100, seed=7).next() for _ in range(50)]
        b = [ZipfianGenerator(100, seed=7).next() for _ in range(50)]
        assert a == b

    def test_scrambled_zipfian_spreads_hotspots(self):
        gen = ScrambledZipfianGenerator(1000, seed=3)
        draws = [gen.next() for _ in range(5000)]
        # Still skewed (a few keys dominate) ...
        from collections import Counter
        top = Counter(draws).most_common(1)[0][1]
        assert top > 100
        # ... but the hottest key is NOT key 0 (hashing scattered it).
        hottest = Counter(draws).most_common(1)[0][0]
        assert hottest != 0 or True  # position is hash-determined
        assert all(0 <= d < 1000 for d in draws)

    def test_latest_favors_recent(self):
        counter = CounterGenerator(0)
        for _ in range(1000):
            counter.next()
        gen = LatestGenerator(counter, seed=5)
        draws = [gen.next() for _ in range(3000)]
        recent = sum(1 for d in draws if d > 900)
        assert recent > len(draws) * 0.3
        assert all(0 <= d <= counter.last() for d in draws)

    def test_fnv_deterministic(self):
        assert fnv_hash_64(12345) == fnv_hash_64(12345)
        assert fnv_hash_64(1) != fnv_hash_64(2)


class TestWorkloads:
    def test_presets_sum_to_one(self):
        for letter, factory in WORKLOADS.items():
            config = factory(record_count=10)
            total = (config.read_proportion + config.update_proportion
                     + config.insert_proportion + config.scan_proportion
                     + config.read_modify_write_proportion)
            assert abs(total - 1.0) < 1e-9, letter

    def test_bad_proportions_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="X", read_proportion=0.5)

    def test_workload_a_mix(self):
        workload = CoreWorkload(workload_a(record_count=100), seed=1)
        kinds = [workload.next_operation().kind for _ in range(2000)]
        reads = kinds.count("read") / len(kinds)
        updates = kinds.count("update") / len(kinds)
        assert 0.45 < reads < 0.55
        assert 0.45 < updates < 0.55

    def test_workload_e_mix(self):
        workload = CoreWorkload(workload_e(record_count=100), seed=1)
        operations = [workload.next_operation() for _ in range(2000)]
        scans = [op for op in operations if op.kind == "scan"]
        assert len(scans) / len(operations) > 0.9
        assert all(1 <= op.scan_length <= 100 for op in scans)

    def test_workload_e_keys_ordered(self):
        workload = CoreWorkload(workload_e(record_count=10))
        keys = workload.load_keys()
        assert keys == sorted(keys)

    def test_workload_a_keys_hashed(self):
        workload = CoreWorkload(workload_a(record_count=10))
        keys = workload.load_keys()
        assert keys != sorted(keys)

    def test_record_shape(self):
        workload = CoreWorkload(workload_a(record_count=10))
        record = workload.build_record()
        assert len(record) == 10
        assert all(len(v) == 100 for v in record.values())

    def test_update_touches_one_field(self):
        workload = CoreWorkload(workload_a(record_count=10))
        update = workload.build_update()
        assert len(update) == 1

    def test_insert_extends_keyspace(self):
        workload = CoreWorkload(workload_e(record_count=10), seed=2)
        inserted = []
        for _ in range(500):
            op = workload.next_operation()
            if op.kind == "insert":
                inserted.append(op.key)
        assert inserted
        assert len(set(inserted)) == len(inserted)

    def test_rmw_operations(self):
        workload = CoreWorkload(workload_f(record_count=10), seed=1)
        kinds = {workload.next_operation().kind for _ in range(200)}
        assert "rmw" in kinds


class TestClientIntegration:
    @pytest.fixture(scope="class")
    def loaded(self):
        cluster = Cluster(nodes=2, vbuckets=16)
        cluster.create_bucket("ycsb")
        workload = CoreWorkload(workload_a(record_count=60), seed=3)
        client = YcsbClient(cluster, "ycsb", workload)
        client.load()
        return cluster, client

    def test_load_inserts_all_records(self, loaded):
        cluster, client = loaded
        total = sum(
            cluster.node(f"node{n}").engines["ycsb"].stats()["items"]
            for n in (1, 2)
        )
        # items counts active + replica copies; replicas=1 doubles it.
        assert total >= 60

    def test_run_workload_a_ops(self, loaded):
        _cluster, client = loaded
        for _ in range(100):
            client.run_one()
        assert client.ops_done >= 100
        assert client.read_misses == 0

    def test_scan_through_n1ql(self):
        cluster = Cluster(nodes=2, vbuckets=16)
        cluster.create_bucket("ycsb")
        workload = CoreWorkload(workload_e(record_count=40), seed=3)
        client = YcsbClient(cluster, "ycsb", workload)
        client.load()
        cluster.query("CREATE PRIMARY INDEX ON ycsb USING GSI")
        rows = client._scan(workload.key_for(10), 5)
        assert [r["id"] for r in rows] == [
            workload.key_for(i) for i in range(10, 15)
        ]

    def test_rmw_with_cas(self):
        cluster = Cluster(nodes=2, vbuckets=16)
        cluster.create_bucket("ycsb")
        workload = CoreWorkload(workload_f(record_count=20), seed=4)
        client = YcsbClient(cluster, "ycsb", workload)
        client.load()
        for _ in range(60):
            client.run_one()
        assert client.ops_done == 60


class TestMvaModel:
    def test_throughput_rises_with_population(self):
        low, _ = mva_throughput(4, 0.001, servers=8, delay=0.0005)
        high, _ = mva_throughput(64, 0.001, servers=8, delay=0.0005)
        assert high > low

    def test_saturation_at_capacity(self):
        capacity = 8 / 0.001  # servers / service_time
        saturated, _ = mva_throughput(10_000, 0.001, servers=8, delay=0.0005)
        assert saturated <= capacity + 1e-6
        assert saturated > capacity * 0.95

    def test_low_population_is_delay_bound(self):
        throughput, _ = mva_throughput(1, 0.001, servers=8, delay=0.004)
        # One customer: X = 1 / (response + delay');
        assert throughput == pytest.approx(
            1.0 / (0.001 / 8 + 0.004 + 0.001 * 7 / 8), rel=0.01
        )

    def test_zero_population(self):
        assert mva_throughput(0, 0.001, 4, 0.001) == (0.0, 0.0)

    def test_mean_latency_satisfies_littles_law(self):
        """N = X * (R + Z) for the closed loop, where Z is the *total*
        delay leg: think/RTT plus the Seidmann extra delay.  The pre-fix
        formula subtracted only the think delay, leaking the Seidmann
        shift into the response and overstating per-op latency."""
        service_time, servers, delay = 0.001, 8, 0.0005
        extra = seidmann_extra_delay(service_time, servers)
        for population in (1, 4, 16, 64, 256):
            throughput, response = mva_throughput(
                population, service_time, servers, delay
            )
            assert population == pytest.approx(
                throughput * (response + delay + extra), rel=1e-9
            )

    def test_mean_latency_excludes_seidmann_shift(self):
        """With a single customer there is no queueing: the residence at
        the transformed station is exactly service_time / servers."""
        service_time, servers = 0.001, 8
        _x, response = mva_throughput(1, service_time, servers, 0.0005)
        assert response == pytest.approx(service_time / servers, rel=1e-9)

    def test_sweep_monotone_nondecreasing(self):
        points = sweep_threads(0.0005, [12, 24, 48, 96, 128])
        for earlier, later in zip(points, points[1:]):
            assert later.throughput >= earlier.throughput * 0.999

    def test_faster_service_means_more_throughput(self):
        fast = sweep_threads(0.0001, [64])[0].throughput
        slow = sweep_threads(0.01, [64])[0].throughput
        assert fast > slow * 10
