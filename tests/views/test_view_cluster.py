"""Cluster-level view tests: incremental DCP maintenance, stale
semantics, scatter/gather merging, and behaviour across rebalance and
failover."""

import pytest

from repro import Cluster
from repro.common.errors import ViewNotFoundError
from repro.views import ViewDefinition, ViewQueryParams


def age_view():
    def map_fn(doc, meta, emit):
        if "age" in doc:
            emit(doc["age"], doc.get("name"))

    return ViewDefinition("dd", "by_age", map_fn, "_count")


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=3, vbuckets=16)
    cluster.create_bucket("b")
    return cluster


@pytest.fixture
def client(cluster):
    return cluster.connect()


def load_users(client, n=30):
    for i in range(n):
        client.upsert("b", f"u{i}", {"name": f"user{i}", "age": 20 + (i % 10)})


class TestDefinition:
    def test_initial_materialization(self, cluster, client):
        """Define the view *after* the data exists: initial build reads
        the existing documents (section 4.3.3)."""
        load_users(client)
        cluster.define_view("b", age_view())
        result = client.view_query("b", "dd", "by_age", stale="ok",
                                   reduce=False)
        assert len(result.rows) == 30

    def test_unknown_view_query(self, cluster, client):
        with pytest.raises(ViewNotFoundError):
            client.view_query("b", "dd", "ghost")

    def test_drop_view(self, cluster, client):
        cluster.define_view("b", age_view())
        cluster.drop_view("b", "dd", "by_age")
        with pytest.raises(ViewNotFoundError):
            client.view_query("b", "dd", "by_age")


class TestIncrementalMaintenance:
    def test_writes_flow_into_view(self, cluster, client):
        cluster.define_view("b", age_view())
        load_users(client, 10)
        cluster.run_until_idle()
        result = client.view_query("b", "dd", "by_age", stale="ok",
                                   reduce=False)
        assert len(result.rows) == 10

    def test_update_reindexes(self, cluster, client):
        cluster.define_view("b", age_view())
        client.upsert("b", "u1", {"name": "x", "age": 30})
        cluster.run_until_idle()
        client.upsert("b", "u1", {"name": "x", "age": 99})
        cluster.run_until_idle()
        result = client.view_query("b", "dd", "by_age", stale="ok",
                                   reduce=False, key=99)
        assert len(result.rows) == 1
        assert not len(client.view_query("b", "dd", "by_age", stale="ok",
                                         reduce=False, key=30).rows)

    def test_delete_removes_rows(self, cluster, client):
        cluster.define_view("b", age_view())
        client.upsert("b", "u1", {"name": "x", "age": 30})
        cluster.run_until_idle()
        client.remove("b", "u1")
        cluster.run_until_idle()
        result = client.view_query("b", "dd", "by_age", stale="ok",
                                   reduce=False)
        assert len(result.rows) == 0


class TestStaleness:
    def test_stale_ok_may_miss_fresh_writes(self, cluster, client):
        """Eventually consistent by default (section 3.1.2): without
        running the pumps, stale=ok misses unindexed mutations."""
        cluster.define_view("b", age_view())
        engine = cluster.node("node1").engines["b"]
        # Write directly so no scheduler rounds run.
        vb = engine.owned_vbuckets()[0]
        engine.upsert(vb, "direct", {"age": 55})
        result = cluster.views.query("b", "dd", "by_age",
                                     ViewQueryParams(stale="ok", reduce=False))
        assert all(row["id"] != "direct" for row in result.rows)

    def test_stale_false_waits_for_indexer(self, cluster, client):
        cluster.define_view("b", age_view())
        engine = cluster.node("node1").engines["b"]
        vb = engine.owned_vbuckets()[0]
        engine.upsert(vb, "direct", {"age": 55})
        result = cluster.views.query("b", "dd", "by_age",
                                     ViewQueryParams(stale="false", reduce=False))
        assert any(row["id"] == "direct" for row in result.rows)

    def test_update_after_is_default(self):
        assert ViewQueryParams().stale == "update_after"


class TestScatterGather:
    def test_rows_merged_sorted_across_nodes(self, cluster, client):
        load_users(client, 40)
        cluster.define_view("b", age_view())
        result = client.view_query("b", "dd", "by_age", stale="false",
                                   reduce=False)
        keys = [row["key"] for row in result.rows]
        assert keys == sorted(keys)
        assert len(keys) == 40

    def test_cluster_wide_reduce(self, cluster, client):
        load_users(client, 40)
        cluster.define_view("b", age_view())
        result = client.view_query("b", "dd", "by_age", stale="false")
        assert result.is_reduced
        assert result.value == 40

    def test_cluster_wide_group(self, cluster, client):
        load_users(client, 40)
        cluster.define_view("b", age_view())
        result = client.view_query("b", "dd", "by_age", stale="false",
                                   group=True)
        assert sum(row["value"] for row in result.rows) == 40
        assert [row["key"] for row in result.rows] == sorted(
            row["key"] for row in result.rows
        )

    def test_limit_and_skip_after_merge(self, cluster, client):
        load_users(client, 40)
        cluster.define_view("b", age_view())
        everything = client.view_query("b", "dd", "by_age", stale="false",
                                       reduce=False)
        window = client.view_query("b", "dd", "by_age", stale="false",
                                   reduce=False, skip=5, limit=10)
        assert [r["id"] for r in window.rows] == [
            r["id"] for r in everything.rows[5:15]
        ]

    def test_descending_merge(self, cluster, client):
        load_users(client, 20)
        cluster.define_view("b", age_view())
        result = client.view_query("b", "dd", "by_age", stale="false",
                                   reduce=False, descending=True)
        keys = [row["key"] for row in result.rows]
        assert keys == sorted(keys, reverse=True)

    def test_sum_reduce_across_nodes(self, cluster, client):
        def map_fn(doc, meta, emit):
            emit(doc["age"], doc["age"])

        cluster.define_view("b", ViewDefinition("dd", "sum_age", map_fn, "_sum"))
        load_users(client, 30)
        result = client.view_query("b", "dd", "sum_age", stale="false")
        expected = sum(20 + (i % 10) for i in range(30))
        assert result.value == expected


class TestTopologyChanges:
    def test_view_consistent_through_rebalance(self, cluster, client):
        load_users(client, 40)
        cluster.define_view("b", age_view())
        before = client.view_query("b", "dd", "by_age", stale="false",
                                   reduce=False)
        cluster.add_node("node4")
        cluster.rebalance()
        after = client.view_query("b", "dd", "by_age", stale="false",
                                  reduce=False)
        assert len(after.rows) == len(before.rows) == 40
        assert sorted(r["id"] for r in after.rows) == sorted(
            r["id"] for r in before.rows
        )

    def test_new_node_serves_view_rows(self, cluster, client):
        load_users(client, 40)
        cluster.define_view("b", age_view())
        cluster.add_node("node4")
        cluster.rebalance()
        view_engine = cluster.node("node4").view_engines["b"]
        assert view_engine.indexes == {} or True  # engine exists
        # The new node must contribute rows for its vBuckets.
        local = cluster.node("node4").view_query_local(
            "b", "dd", "by_age", ViewQueryParams(reduce=False)
        )
        assert local["kind"] == "rows"

    def test_view_consistent_after_failover(self, cluster, client):
        load_users(client, 40)
        cluster.define_view("b", age_view())
        client.view_query("b", "dd", "by_age", stale="false", reduce=False)
        cluster.failover("node2")
        cluster.run_until_idle()
        result = client.view_query("b", "dd", "by_age", stale="false",
                                   reduce=False)
        assert len(result.rows) == 40

    def test_no_duplicate_rows_after_rebalance(self, cluster, client):
        """The moved-away vBuckets' rows must be masked/purged on the old
        node (the B-tree vBucket marking of section 4.3.3)."""
        load_users(client, 40)
        cluster.define_view("b", age_view())
        client.view_query("b", "dd", "by_age", stale="false", reduce=False)
        cluster.add_node("node4")
        cluster.rebalance()
        result = client.view_query("b", "dd", "by_age", stale="false",
                                   reduce=False)
        ids = [row["id"] for row in result.rows]
        assert len(ids) == len(set(ids)) == 40
