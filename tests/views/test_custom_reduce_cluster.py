"""Cluster-level views with custom (non-builtin) reduce functions and
the _stats builtin across nodes -- exercising the rereduce path through
scatter/gather."""

import pytest

from repro import Cluster
from repro.views import ViewDefinition


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=3, vbuckets=16)
    cluster.create_bucket("b")
    client = cluster.connect()
    for i in range(30):
        client.upsert("b", f"sale::{i:03d}", {
            "region": ["east", "west"][i % 2],
            "amount": 10 * (i + 1),
        })
    cluster.run_until_idle()
    return cluster


def max_amount_reduce(values, rereduce):
    """Custom reduce: maximum amount (same shape for both phases)."""
    return max(values) if values else None


class TestCustomReduce:
    def test_cluster_wide_custom_reduce(self, cluster):
        def map_fn(doc, meta, emit):
            emit(doc["region"], doc["amount"])

        cluster.define_view("b", ViewDefinition("dd", "max_sale", map_fn,
                                                max_amount_reduce))
        result = cluster.views.query("b", "dd", "max_sale", stale="false")
        assert result.value == 300

    def test_grouped_custom_reduce(self, cluster):
        def map_fn(doc, meta, emit):
            emit(doc["region"], doc["amount"])

        cluster.define_view("b", ViewDefinition("dd", "max_by_region", map_fn,
                                                max_amount_reduce))
        result = cluster.views.query("b", "dd", "max_by_region",
                                     stale="false", group=True)
        by_region = {row["key"]: row["value"] for row in result.rows}
        assert by_region == {"east": 290, "west": 300}

    def test_stats_builtin_across_nodes(self, cluster):
        def map_fn(doc, meta, emit):
            emit(doc["region"], doc["amount"])

        cluster.define_view("b", ViewDefinition("dd", "sale_stats", map_fn,
                                                "_stats"))
        result = cluster.views.query("b", "dd", "sale_stats", stale="false")
        stats = result.value
        assert stats["count"] == 30
        assert stats["sum"] == sum(10 * (i + 1) for i in range(30))
        assert stats["min"] == 10
        assert stats["max"] == 300

    def test_range_reduce_across_nodes(self, cluster):
        def map_fn(doc, meta, emit):
            emit(doc["amount"], doc["amount"])

        cluster.define_view("b", ViewDefinition("dd", "by_amount", map_fn,
                                                "_sum"))
        result = cluster.views.query("b", "dd", "by_amount", stale="false",
                                     startkey=100, endkey=150)
        assert result.value == 100 + 110 + 120 + 130 + 140 + 150
