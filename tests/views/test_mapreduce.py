"""Tests for view definitions, builtin reduces, and the view index."""

import pytest

from repro.common.disk import SimulatedDisk
from repro.views.mapreduce import (
    BUILTIN_REDUCES,
    DocMetaView,
    ViewDefinition,
    attribute_view,
    primary_view,
)
from repro.views.viewindex import ViewIndex, ViewQueryParams

META = DocMetaView(id="doc1", rev=1, expiry=0.0, flags=0)


class TestMapFunctions:
    def test_emit_rows(self):
        def map_fn(doc, meta, emit):
            emit(doc["name"], doc["email"])

        view = ViewDefinition("dd", "profile", map_fn)
        rows = view.run_map({"name": "Dipti", "email": "d@cb.com"}, META)
        assert rows == [("Dipti", "d@cb.com")]

    def test_conditional_emit(self):
        """The paper's Profile view: emit only when doc.name exists."""
        def map_fn(doc, meta, emit):
            if "name" in doc:
                emit(doc["name"], doc.get("email"))

        view = ViewDefinition("dd", "profile", map_fn)
        assert view.run_map({"other": 1}, META) == []
        assert view.run_map({"name": "x"}, META) == [("x", None)]

    def test_multi_emit(self):
        def map_fn(doc, meta, emit):
            for tag in doc.get("tags", []):
                emit(tag, 1)

        view = ViewDefinition("dd", "tags", map_fn)
        rows = view.run_map({"tags": ["a", "b"]}, META)
        assert rows == [("a", 1), ("b", 1)]

    def test_throwing_map_emits_nothing(self):
        def map_fn(doc, meta, emit):
            raise RuntimeError("boom")

        view = ViewDefinition("dd", "bad", map_fn)
        assert view.run_map({}, META) == []

    def test_meta_available(self):
        def map_fn(doc, meta, emit):
            emit(meta.id, meta.rev)

        view = ViewDefinition("dd", "ids", map_fn)
        assert view.run_map({}, META) == [("doc1", 1)]

    def test_attribute_view(self):
        view = attribute_view("dd", "email", "email")
        assert view.run_map({"email": "a@b.c"}, META) == [("a@b.c", None)]
        assert view.run_map({"other": 1}, META) == []

    def test_attribute_view_dotted_path(self):
        view = attribute_view("dd", "zip", "address.zip")
        assert view.run_map({"address": {"zip": "94040"}}, META) == [("94040", None)]
        assert view.run_map({"address": "flat"}, META) == []

    def test_primary_view(self):
        view = primary_view()
        assert view.run_map({"any": "thing"}, META) == [("doc1", None)]

    def test_unknown_builtin_reduce(self):
        with pytest.raises(ValueError):
            ViewDefinition("dd", "v", lambda d, m, e: None, "_median")


class TestBuiltinReduces:
    def test_count(self):
        count = BUILTIN_REDUCES["_count"]
        assert count([1, "a", None], False) == 3
        assert count([3, 4], True) == 7

    def test_sum(self):
        total = BUILTIN_REDUCES["_sum"]
        assert total([1, 2, 3.5], False) == 6.5
        assert total([6, 4], True) == 10

    def test_stats(self):
        stats = BUILTIN_REDUCES["_stats"]
        result = stats([1, 2, 3], False)
        assert result["sum"] == 6
        assert result["count"] == 3
        assert result["min"] == 1
        assert result["max"] == 3
        assert result["sumsqr"] == 14

    def test_stats_rereduce(self):
        stats = BUILTIN_REDUCES["_stats"]
        a = stats([1, 2], False)
        b = stats([3], False)
        merged = stats([a, b], True)
        assert merged == stats([1, 2, 3], False)


def make_index(reduce_fn=None):
    definition = ViewDefinition("dd", "v", lambda d, m, e: None, reduce_fn)
    return ViewIndex(definition, SimulatedDisk(), "v.view")


class TestViewIndex:
    def test_update_and_scan(self):
        index = make_index()
        index.update_doc("d1", 0, [("apple", 1)])
        index.update_doc("d2", 0, [("banana", 2)])
        rows = list(index.scan(ViewQueryParams()))
        assert [(r["key"], r["id"]) for r in rows] == [("apple", "d1"), ("banana", "d2")]

    def test_update_replaces_old_rows(self):
        index = make_index()
        index.update_doc("d1", 0, [("old", 1)])
        index.update_doc("d1", 0, [("new", 2)])
        rows = list(index.scan(ViewQueryParams()))
        assert [r["key"] for r in rows] == ["new"]

    def test_remove_doc(self):
        index = make_index()
        index.update_doc("d1", 0, [("k", 1)])
        index.remove_doc("d1")
        assert list(index.scan(ViewQueryParams())) == []

    def test_multi_emit_per_doc(self):
        index = make_index()
        index.update_doc("d1", 0, [("a", 1), ("b", 2)])
        assert index.row_count() == 2
        index.remove_doc("d1")
        assert index.row_count() == 0

    def test_key_lookup(self):
        index = make_index()
        index.update_doc("d1", 0, [("x", 1)])
        index.update_doc("d2", 0, [("x", 2)])
        index.update_doc("d3", 0, [("y", 3)])
        rows = list(index.scan(ViewQueryParams(key="x")))
        assert len(rows) == 2
        assert all(r["key"] == "x" for r in rows)

    def test_keys_lookup(self):
        index = make_index()
        for i, key in enumerate(["a", "b", "c", "d"]):
            index.update_doc(f"d{i}", 0, [(key, i)])
        rows = list(index.scan(ViewQueryParams(keys=["b", "d"])))
        assert [r["key"] for r in rows] == ["b", "d"]

    def test_range_inclusive(self):
        index = make_index()
        for i in range(10):
            index.update_doc(f"d{i}", 0, [(i, None)])
        rows = list(index.scan(ViewQueryParams(startkey=3, endkey=6)))
        assert [r["key"] for r in rows] == [3, 4, 5, 6]

    def test_range_exclusive_end(self):
        index = make_index()
        for i in range(10):
            index.update_doc(f"d{i}", 0, [(i, None)])
        rows = list(
            index.scan(ViewQueryParams(startkey=3, endkey=6, inclusive_end=False))
        )
        assert [r["key"] for r in rows] == [3, 4, 5]

    def test_descending(self):
        index = make_index()
        for i in range(5):
            index.update_doc(f"d{i}", 0, [(i, None)])
        rows = list(index.scan(ViewQueryParams(descending=True)))
        assert [r["key"] for r in rows] == [4, 3, 2, 1, 0]

    def test_mixed_type_keys_collate(self):
        index = make_index()
        index.update_doc("d1", 0, [("str", None)])
        index.update_doc("d2", 0, [(1, None)])
        index.update_doc("d3", 0, [(None, None)])
        index.update_doc("d4", 0, [([1], None)])
        index.update_doc("d5", 0, [(True, None)])
        rows = [r["key"] for r in index.scan(ViewQueryParams())]
        assert rows == [None, True, 1, "str", [1]]

    def test_vbucket_masking(self):
        index = make_index()
        index.update_doc("d1", 0, [("a", 1)])
        index.update_doc("d2", 1, [("b", 2)])
        rows = list(index.scan(ViewQueryParams(), active_vbuckets={0}))
        assert [r["id"] for r in rows] == ["d1"]

    def test_remove_vbucket(self):
        index = make_index()
        index.update_doc("d1", 0, [("a", 1)])
        index.update_doc("d2", 1, [("b", 2)])
        index.remove_vbucket(1)
        assert [r["id"] for r in index.scan(ViewQueryParams())] == ["d1"]
        assert index.vbuckets_present == {0}


class TestViewIndexReduce:
    def test_full_reduce_count(self):
        index = make_index("_count")
        for i in range(25):
            index.update_doc(f"d{i}", 0, [(i, None)])
        assert index.reduce(ViewQueryParams()) == 25

    def test_range_reduce_sum(self):
        index = make_index("_sum")
        for i in range(20):
            index.update_doc(f"d{i}", 0, [(i, i * 10)])
        assert index.reduce(ViewQueryParams(startkey=5, endkey=7)) == 50 + 60 + 70

    def test_reduce_with_masking_falls_back(self):
        index = make_index("_count")
        index.update_doc("d1", 0, [("a", None)])
        index.update_doc("d2", 1, [("b", None)])
        assert index.reduce(ViewQueryParams(), active_vbuckets={0}) == 1

    def test_grouped(self):
        index = make_index("_count")
        index.update_doc("d1", 0, [("a", None)])
        index.update_doc("d2", 0, [("a", None)])
        index.update_doc("d3", 0, [("b", None)])
        groups = index.grouped(ViewQueryParams(group=True))
        assert groups == [{"key": "a", "value": 2}, {"key": "b", "value": 1}]

    def test_group_level_truncates_array_keys(self):
        index = make_index("_count")
        index.update_doc("d1", 0, [(["2016", "01", "05"], None)])
        index.update_doc("d2", 0, [(["2016", "01", "09"], None)])
        index.update_doc("d3", 0, [(["2016", "02", "01"], None)])
        groups = index.grouped(ViewQueryParams(group_level=2))
        assert groups == [
            {"key": ["2016", "01"], "value": 2},
            {"key": ["2016", "02"], "value": 1},
        ]

    def test_reduce_without_fn_raises(self):
        index = make_index()
        with pytest.raises(ValueError):
            index.reduce(ViewQueryParams())


class TestViewQueryParams:
    def test_invalid_stale(self):
        with pytest.raises(ValueError):
            ViewQueryParams(stale="nope")

    def test_key_and_keys_exclusive(self):
        with pytest.raises(ValueError):
            ViewQueryParams(key=1, keys=[1])

    def test_group_true_sets_exact_level(self):
        params = ViewQueryParams(group=True)
        assert params.group_level > 1000
