"""Per-rule self-tests: each rule gets at least one fixture that must
fire and one clean fixture that must not.

Fixtures are inline sources handed to :func:`repro.lint.lint_source`
with an explicit dotted ``module`` so package-scoped rules
(cross-service, missing-null) see the module they would in the tree.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def run(source: str, module: str = "repro.kv.fixture",
        profile: str = "strict", select=None):
    return lint_source(textwrap.dedent(source), path="fixture.py",
                       module=module, profile=profile, select=select)


def rule_names(violations):
    return sorted({v.rule for v in violations})


# -- no-wall-clock ----------------------------------------------------------


def test_wall_clock_module_call_fires():
    violations = run("""
        import time

        def stamp():
            return time.time()
    """)
    assert rule_names(violations) == ["no-wall-clock"]
    assert violations[0].line == 5


def test_wall_clock_aliased_import_fires():
    violations = run("""
        import time as wall

        def nap():
            wall.sleep(1)
    """)
    assert rule_names(violations) == ["no-wall-clock"]


def test_wall_clock_from_import_fires():
    violations = run("""
        from time import perf_counter
    """)
    assert rule_names(violations) == ["no-wall-clock"]


def test_wall_clock_datetime_now_fires():
    violations = run("""
        import datetime

        def today():
            return datetime.datetime.now()
    """)
    assert rule_names(violations) == ["no-wall-clock"]


def test_wall_clock_clean_clock_use():
    violations = run("""
        def stamp(clock):
            return clock.now()
    """)
    assert violations == []


# -- no-unseeded-random -----------------------------------------------------


def test_unseeded_module_function_fires():
    violations = run("""
        import random

        def pick():
            return random.random()
    """)
    assert rule_names(violations) == ["no-unseeded-random"]


def test_unseeded_random_instance_fires():
    violations = run("""
        import random

        rng = random.Random()
    """)
    assert rule_names(violations) == ["no-unseeded-random"]


def test_from_import_random_function_fires():
    violations = run("""
        from random import choice
    """)
    assert rule_names(violations) == ["no-unseeded-random"]


def test_seeded_random_is_clean():
    violations = run("""
        import random

        rng = random.Random(42)
    """)
    assert violations == []


# -- no-cross-service-reach-through -----------------------------------------


def test_client_importing_kv_engine_fires():
    violations = run("""
        from ..kv.engine import KVEngine
    """, module="repro.client.fixture")
    assert rule_names(violations) == ["no-cross-service-reach-through"]


def test_absolute_engine_import_fires():
    violations = run("""
        from repro.kv.engine import KVEngine
    """, module="repro.n1ql.fixture")
    assert rule_names(violations) == ["no-cross-service-reach-through"]


def test_kv_types_import_is_clean():
    violations = run("""
        from ..kv.types import MutationResult, VBucketState
    """, module="repro.client.fixture")
    assert violations == []


def test_engine_import_inside_kv_is_clean():
    violations = run("""
        from .engine import KVEngine
    """, module="repro.kv.fixture")
    assert violations == []


def test_type_checking_engine_import_is_clean():
    violations = run("""
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from ..kv.engine import KVEngine
    """, module="repro.views.fixture")
    assert violations == []


# -- error-taxonomy ---------------------------------------------------------


def test_bare_value_error_fires():
    violations = run("""
        def lookup(key):
            raise ValueError(f"bad key {key}")
    """)
    assert rule_names(violations) == ["error-taxonomy"]


def test_bare_runtime_error_fires():
    violations = run("""
        def drive():
            raise RuntimeError("stuck")
    """)
    assert rule_names(violations) == ["error-taxonomy"]


def test_constructor_validation_is_allowed():
    violations = run("""
        class Config:
            def __init__(self, replicas):
                if replicas < 0:
                    raise ValueError("replicas must be >= 0")
    """)
    assert violations == []


def test_taxonomy_error_is_clean():
    violations = run("""
        from ..common.errors import InvalidArgumentError

        def lookup(key):
            raise InvalidArgumentError(f"bad key {key}")
    """)
    assert violations == []


# -- pump-contract ----------------------------------------------------------


def test_unannotated_pump_fires():
    violations = run("""
        class Flusher:
            def pump(self):
                return True
    """)
    assert rule_names(violations) == ["pump-contract"]


def test_unbounded_drain_fires():
    violations = run("""
        class Flusher:
            def pump(self) -> bool:
                while True:
                    self.queue.pop()
    """)
    assert rule_names(violations) == ["pump-contract"]


def test_bounded_pump_is_clean():
    violations = run("""
        class Flusher:
            def pump(self) -> bool:
                batch = self.queue[:10]
                for item in batch:
                    self.write(item)
                return bool(batch)
    """)
    assert violations == []


# -- metrics-naming ---------------------------------------------------------


def test_computed_metric_name_fires():
    violations = run("""
        def record(metrics, name):
            metrics.inc(name)
    """)
    assert rule_names(violations) == ["metrics-naming"]


def test_badly_cased_metric_name_fires():
    violations = run("""
        def record(metrics):
            metrics.observe("N1QL.ParseSeconds", 0.1)
    """)
    assert rule_names(violations) == ["metrics-naming"]


def test_undotted_metric_name_fires():
    violations = run("""
        def record(metrics):
            metrics.inc("requests")
    """)
    assert rule_names(violations) == ["metrics-naming"]


def test_dotted_literal_metric_name_is_clean():
    violations = run("""
        class Service:
            def record(self):
                self.node.metrics.inc("n1ql.plan_cache.hit")
    """)
    assert violations == []


# -- missing-null-discipline ------------------------------------------------


def test_eq_none_in_n1ql_fires():
    violations = run("""
        def project(row):
            return row == None
    """, module="repro.n1ql.fixture")
    assert rule_names(violations) == ["missing-null-discipline"]


def test_is_none_on_evaluate_result_fires():
    violations = run("""
        def check(evaluator, expr, env):
            return evaluator.evaluate(expr, env) is None
    """, module="repro.n1ql.fixture")
    assert rule_names(violations) == ["missing-null-discipline"]


def test_bound_result_is_none_is_clean():
    violations = run("""
        def check(evaluator, expr, env):
            value = evaluator.evaluate(expr, env)
            if value is MISSING:
                return False
            return value is None
    """, module="repro.n1ql.fixture")
    assert violations == []


def test_eq_none_outside_n1ql_is_ignored():
    violations = run("""
        def project(row):
            return row == None  # noqa: E711
    """, module="repro.kv.fixture")
    assert violations == []


# -- no-pump-reentrancy -----------------------------------------------------


def test_pump_calling_run_until_idle_fires():
    violations = run("""
        class Flusher:
            def pump(self) -> bool:
                self.node.scheduler.run_until_idle()
                return True
    """, select=["no-pump-reentrancy"])
    assert rule_names(violations) == ["no-pump-reentrancy"]


def test_pump_calling_step_or_advance_fires():
    violations = run("""
        def _pump() -> bool:
            scheduler.step()
            clock_owner.advance(1.0)
            return False
    """, select=["no-pump-reentrancy"])
    assert len(violations) == 2
    assert rule_names(violations) == ["no-pump-reentrancy"]


def test_pump_draining_its_queue_is_clean():
    violations = run("""
        class Views:
            def pump(self) -> bool:
                for message in self.stream.take(64):
                    self.apply(message)
                return True
    """, select=["no-pump-reentrancy"])
    assert violations == []


def test_drive_calls_outside_pumps_are_fine():
    violations = run("""
        def settle(cluster):
            cluster.scheduler.run_until_idle()
    """, select=["no-pump-reentrancy"])
    assert violations == []


# -- declared-shared-state --------------------------------------------------


def test_undeclared_module_counter_fires():
    violations = run("""
        import itertools

        _ids = itertools.count(1)
    """, select=["declared-shared-state"])
    assert rule_names(violations) == ["declared-shared-state"]


def test_declared_module_counter_is_clean():
    violations = run("""
        import itertools

        __shared_state__ = ("_ids",)
        _ids = itertools.count(1)
    """, select=["declared-shared-state"])
    assert violations == []


def test_undeclared_global_statement_fires():
    violations = run("""
        TOTAL = 0

        def bump():
            global TOTAL
            TOTAL += 1
    """, select=["declared-shared-state"])
    assert rule_names(violations) == ["declared-shared-state"]


def test_declared_global_statement_is_clean():
    violations = run("""
        __shared_state__ = ("TOTAL",)
        TOTAL = 0

        def bump():
            global TOTAL
            TOTAL += 1
    """, select=["declared-shared-state"])
    assert violations == []


def test_lowercase_mutable_display_fires():
    violations = run("""
        _registry = {}
    """, select=["declared-shared-state"])
    assert rule_names(violations) == ["declared-shared-state"]


def test_constant_case_display_is_treated_as_frozen():
    violations = run("""
        KNOWN_KINDS = ["kv", "views", "gsi"]
        _TABLE = {"a": 1}
    """, select=["declared-shared-state"])
    assert violations == []


def test_function_local_state_is_not_module_state():
    violations = run("""
        import itertools

        def make():
            ids = itertools.count(1)
            seen = {}
            return ids, seen
    """, select=["declared-shared-state"])
    assert violations == []


def test_suppression_comment_still_works():
    violations = run("""
        _cache = {}  # repro-lint: disable=declared-shared-state
    """, select=["declared-shared-state"])
    assert violations == []
