"""The tree itself must lint clean -- this is the tier-1 gate that keeps
the invariants true going forward, mirroring the CI ``repro-lint`` step."""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def _format(violations):
    return "\n".join(v.format() for v in violations)


def test_repro_package_is_strictly_clean():
    violations = lint_paths([REPO_ROOT / "src" / "repro"], profile="strict")
    assert violations == [], _format(violations)


def test_harness_code_is_clean_under_relaxed_profile():
    paths = [REPO_ROOT / "examples", REPO_ROOT / "benchmarks"]
    violations = lint_paths(paths, profile="relaxed")
    assert violations == [], _format(violations)
