"""Harness self-tests: suppressions, profiles, module naming, the CLI
exit-code contract, and the registry."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_paths, lint_source
from repro.lint.cli import main
from repro.lint.engine import _ConfigError, module_name_for, profile_for


def run(source: str, **kwargs):
    return lint_source(textwrap.dedent(source), path="fixture.py", **kwargs)


# -- suppressions -----------------------------------------------------------


def test_same_line_suppression():
    violations = run("""
        import time

        def stamp():
            return time.time()  # repro-lint: disable=no-wall-clock
    """)
    assert violations == []


def test_disable_next_covers_following_line():
    violations = run("""
        import time

        def stamp():
            # repro-lint: disable-next=no-wall-clock
            return time.time()
    """)
    assert violations == []


def test_disable_all_suppresses_every_rule():
    violations = run("""
        import time

        def stamp():
            return time.time()  # repro-lint: disable=all
    """)
    assert violations == []


def test_suppressing_a_different_rule_does_not_hide():
    violations = run("""
        import time

        def stamp():
            return time.time()  # repro-lint: disable=error-taxonomy
    """)
    assert [v.rule for v in violations] == ["no-wall-clock"]


def test_suppression_list_is_comma_separated():
    violations = run("""
        import time, random

        def stamp():
            return time.time(), random.random()  # repro-lint: disable=no-wall-clock, no-unseeded-random
    """)
    assert violations == []


# -- profiles ---------------------------------------------------------------


def test_relaxed_profile_allows_wall_clock():
    source = """
        import time

        def stamp():
            return time.time()
    """
    assert run(source, profile="strict") != []
    assert run(source, profile="relaxed") == []


def test_relaxed_profile_still_enforces_other_rules():
    violations = run("""
        import random

        def pick():
            return random.random()
    """, profile="relaxed")
    assert [v.rule for v in violations] == ["no-unseeded-random"]


def test_profile_for_auto_resolution():
    assert profile_for(Path("src/repro/kv/engine.py"), "auto") == "strict"
    assert profile_for(Path("/abs/src/repro/kv/engine.py"), "auto") == "strict"
    assert profile_for(Path("benchmarks/test_figure15_ycsb_a.py"), "auto") == "relaxed"
    assert profile_for(Path("examples/quickstart.py"), "auto") == "relaxed"
    assert profile_for(Path("benchmarks/x.py"), "strict") == "strict"


# -- module naming ----------------------------------------------------------


def test_module_name_inside_package():
    assert module_name_for(Path("src/repro/kv/engine.py")) == "repro.kv.engine"
    assert module_name_for(Path("src/repro/kv/__init__.py")) == "repro.kv"


def test_module_name_outside_package_is_stem():
    assert module_name_for(Path("examples/quickstart.py")) == "quickstart"


# -- parse errors and selection ---------------------------------------------


def test_syntax_error_reports_parse_error_violation():
    violations = run("""
        def broken(:
    """)
    assert [v.rule for v in violations] == ["parse-error"]


def test_select_unknown_rule_raises():
    with pytest.raises(_ConfigError):
        run("x = 1", select=["no-such-rule"])


def test_select_limits_to_named_rules():
    violations = run("""
        import time, random

        def stamp():
            return time.time(), random.random()
    """, select=["no-wall-clock"])
    assert {v.rule for v in violations} == {"no-wall-clock"}


def test_registry_has_the_nine_rules():
    names = {rule.name for rule in all_rules()}
    assert names == {
        "no-wall-clock",
        "no-unseeded-random",
        "no-cross-service-reach-through",
        "error-taxonomy",
        "pump-contract",
        "metrics-naming",
        "missing-null-discipline",
        "no-pump-reentrancy",
        "declared-shared-state",
    }
    assert all(rule.invariant for rule in all_rules())


# -- CLI exit codes ---------------------------------------------------------


def test_cli_exits_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "src" / "repro" / "clean.py"
    clean.parent.mkdir(parents=True)
    clean.write_text("def nothing():\n    return 1\n")
    assert main([str(clean)]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_exits_one_on_violation(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "no-wall-clock" in out


def test_cli_exits_two_on_empty_path(tmp_path, capsys):
    empty = tmp_path / "nothing"
    empty.mkdir()
    assert main([str(empty)]) == 2


def test_cli_exits_two_on_unknown_rule(tmp_path, capsys):
    f = tmp_path / "x.py"
    f.write_text("x = 1\n")
    assert main([str(f), "--select", "bogus"]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "no-wall-clock" in out and "pump-contract" in out


def test_lint_paths_auto_profile(tmp_path):
    repro_file = tmp_path / "src" / "repro" / "mod.py"
    repro_file.parent.mkdir(parents=True)
    repro_file.write_text("import time\nt = time.time()\n")
    bench_file = tmp_path / "benchmarks" / "bench.py"
    bench_file.parent.mkdir(parents=True)
    bench_file.write_text("import time\nt = time.time()\n")
    violations = lint_paths([tmp_path])
    assert [Path(v.path).name for v in violations] == ["mod.py"]
