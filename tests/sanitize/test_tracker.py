"""Write-race tracker unit tests: ownership, mediation, theft, dedup."""

from __future__ import annotations

from repro.common import tracing
from repro.sanitize import WriteRaceTracker, allowed_writers


def test_allowed_writers_by_convention():
    assert allowed_writers("kv/n1/b") == {"flusher/n1/b", "compactor/n1/b"}
    assert allowed_writers("views/n1/b") == {"views/n1/b"}
    assert allowed_writers("gsi/n1/by_i") == frozenset()


def test_frontend_writes_never_flagged():
    tracker = WriteRaceTracker()
    tracker.record_write("kv/n1/b")
    assert tracker.findings == []
    assert tracker.writes_seen == 1


def test_owning_pump_writes_are_clean():
    tracker = WriteRaceTracker()
    tracker.enter_pump("c:flusher/n1/b")
    tracker.record_write("kv/n1/b")
    tracker.exit_pump()
    assert tracker.findings == []


def test_foreign_pump_write_is_flagged():
    tracker = WriteRaceTracker()
    tracker.enter_pump("c:xdcr/b->b")
    tracker.record_write("kv/n1/b")
    tracker.exit_pump()
    [finding] = tracker.findings
    assert finding.kind == "unmediated-write"
    assert finding.pump == "c:xdcr/b->b"
    assert finding.target == "kv/n1/b"
    assert "kv/n1/b" in finding.format()


def test_mediated_write_is_clean():
    tracker = WriteRaceTracker()
    tracker.enter_pump("c:xdcr/b->b")
    tracker.enter_mediated()
    tracker.record_write("kv/n1/b")
    tracker.exit_mediated()
    tracker.exit_pump()
    assert tracker.findings == []


def test_findings_dedup_by_pump_and_target():
    tracker = WriteRaceTracker()
    tracker.enter_pump("c:rogue")
    tracker.record_write("kv/n1/b")
    tracker.record_write("kv/n1/b")
    tracker.record_write("kv/n1/other")
    tracker.exit_pump()
    assert len(tracker.findings) == 2


def test_first_taker_claims_the_stream():
    tracker = WriteRaceTracker()
    tracker.enter_pump("c:views/n1/b")
    tracker.record_take("dcp/n1/b/vb0#1")
    tracker.record_take("dcp/n1/b/vb0#1")
    tracker.exit_pump()
    assert tracker.findings == []


def test_second_pump_taking_is_queue_theft():
    tracker = WriteRaceTracker()
    tracker.enter_pump("c:views/n1/b")
    tracker.record_take("dcp/n1/b/vb0#1")
    tracker.exit_pump()
    tracker.enter_pump("c:thief")
    tracker.record_take("dcp/n1/b/vb0#1")
    tracker.exit_pump()
    [finding] = tracker.findings
    assert finding.kind == "queue-theft"
    assert finding.pump == "c:thief"
    assert "views/n1/b" in finding.detail


def test_frontend_takes_do_not_claim():
    tracker = WriteRaceTracker()
    tracker.record_take("dcp/n1/b/vb0#1")  # rebalance mover on the frontend
    tracker.enter_pump("c:views/n1/b")
    tracker.record_take("dcp/n1/b/vb0#1")
    tracker.exit_pump()
    assert tracker.findings == []


def test_tracing_install_roundtrip():
    tracker = WriteRaceTracker()
    assert tracing.current() is None
    previous = tracing.install(tracker)
    assert previous is None
    assert tracing.current() is tracker
    tracing.record_write("kv/n1/b")  # module-level helper routes to it
    assert tracker.writes_seen == 1
    tracing.install(previous)
    assert tracing.current() is None
    tracing.record_write("kv/n1/b")  # no tracker: a cheap no-op
    assert tracker.writes_seen == 1
