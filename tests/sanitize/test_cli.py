"""CLI exit contract (0 clean / 1 findings / 2 usage) and output formats."""

from __future__ import annotations

from repro.sanitize.cli import SEEDS_ENV, main


def test_clean_scenario_exits_zero(capsys):
    assert main(["--seeds", "2", "--scenario", "kv-durability"]) == 0
    out = capsys.readouterr().out
    assert "kv-durability" in out
    assert "clean" in out


def test_fixtures_exit_one(capsys):
    assert main(["--seeds", "4", "--fixtures"]) == 1
    out = capsys.readouterr().out
    assert "unmediated-write" in out
    assert "queue-theft" in out
    assert "schedule-dependent state" in out


def test_list_scenarios_exits_zero(capsys):
    assert main(["--list-scenarios"]) == 0
    out = capsys.readouterr().out
    assert "kv-durability" in out
    assert "[fixture]" in out


def test_unknown_scenario_exits_two(capsys):
    assert main(["--scenario", "no-such-thing"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_bad_seed_count_exits_two(capsys):
    assert main(["--seeds", "0"]) == 2
    assert "--seeds" in capsys.readouterr().err


def test_fixtures_and_scenario_are_mutually_exclusive(capsys):
    assert main(["--fixtures", "--scenario", "kv-durability"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_seeds_env_override(monkeypatch, capsys):
    monkeypatch.setenv(SEEDS_ENV, "2")
    assert main(["--scenario", "kv-durability"]) == 0
    assert "--seeds 2" in capsys.readouterr().out


def test_seeds_env_rejects_garbage(monkeypatch, capsys):
    monkeypatch.setenv(SEEDS_ENV, "lots")
    assert main(["--scenario", "kv-durability"]) == 2
    assert SEEDS_ENV in capsys.readouterr().err


def test_explicit_seeds_flag_beats_env(monkeypatch, capsys):
    monkeypatch.setenv(SEEDS_ENV, "lots")  # would be an error if consulted
    assert main(["--seeds", "2", "--scenario", "kv-durability"]) == 0


def test_github_format_emits_error_annotations(capsys):
    assert main(["--seeds", "4", "--fixtures", "--format", "github",
                 "-q"]) == 1
    out = capsys.readouterr().out
    assert "::error title=repro-sanitize" in out
    assert "%0A" in out  # multi-line divergence reports stay one line


def test_quiet_suppresses_progress_lines(capsys):
    assert main(["--seeds", "2", "--scenario", "kv-durability", "-q"]) == 0
    assert capsys.readouterr().out == ""
