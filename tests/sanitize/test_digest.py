"""Digest canonicalization and structural diff unit tests."""

from __future__ import annotations

from repro.sanitize import diff_paths, state_digest


def test_digest_ignores_dict_insertion_order():
    digest_a, _ = state_digest([], {"x": {"b": 1, "a": 2}})
    digest_b, _ = state_digest([], {"x": {"a": 2, "b": 1}})
    assert digest_a == digest_b


def test_digest_differs_on_value_change():
    digest_a, _ = state_digest([], {"x": 1})
    digest_b, _ = state_digest([], {"x": 2})
    assert digest_a != digest_b


def test_digest_canonicalizes_tuples_and_non_json_leaves():
    digest_a, state = state_digest([], {"row": (1, "k"), "blob": b"x"})
    digest_b, _ = state_digest([], {"row": [1, "k"], "blob": b"x"})
    assert digest_a == digest_b
    assert state["observations"]["row"] == [1, "k"]
    assert state["observations"]["blob"] == repr(b"x")


def test_diff_paths_reports_dotted_paths():
    a = {"kv": {"k1": 1, "k2": [1, 2]}, "only_a": True}
    b = {"kv": {"k1": 9, "k2": [1, 3]}}
    paths = "\n".join(diff_paths(a, b))
    assert "kv.k1: 1 != 9" in paths
    assert "kv.k2[1]: 2 != 3" in paths
    assert "only_a: only in first run" in paths


def test_diff_paths_reports_length_mismatch_and_respects_limit():
    assert diff_paths({"rows": [1]}, {"rows": [1, 2]}) == \
        ["rows: length 1 != 2"]
    many_a = {str(i): i for i in range(50)}
    many_b = {str(i): i + 1 for i in range(50)}
    assert len(diff_paths(many_a, many_b, limit=5)) == 5


def test_diff_paths_empty_for_equal_structures():
    structure = {"a": [1, {"b": None}]}
    assert diff_paths(structure, {"a": [1, {"b": None}]}) == []
