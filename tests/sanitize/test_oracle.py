"""Oracle self-tests and schedule-independence property tests.

The fixture tests are the sanitizer's proof of detection power: each
deliberately broken scenario must be caught by the right detector.  The
property tests are the paper-facing claim: durability acks and XDCR
conflict resolution hold under (well over) ten shuffled schedules.
"""

from __future__ import annotations

import pytest

from repro.common.scheduler import SeededShuffle
from repro.sanitize import explore, get_scenarios, policy_matrix, run_scenario
from repro.sanitize.fixtures import fixture_scenarios


def _fixture(name):
    return {s.name: s for s in fixture_scenarios()}[name]


def _builtin(name):
    return {s.name: s for s in get_scenarios(None)}[name]


# -- policy matrix ------------------------------------------------------------------


def test_policy_matrix_composition():
    policies = policy_matrix(10)
    described = [p.describe() for p in policies]
    assert described[0] == "registration-order"
    assert sum(d.startswith("seeded-shuffle") for d in described) == 10
    assert sum(d.startswith("starve-one") for d in described) == 2
    assert sum(d.startswith("weighted") for d in described) == 2
    assert len(described) == len(set(described))


def test_policy_matrix_is_deterministic():
    first = [p.describe() for p in policy_matrix(7)]
    second = [p.describe() for p in policy_matrix(7)]
    assert first == second


# -- fixture self-tests: each bug caught by the right detector ----------------------


def test_order_dependent_fixture_caught_by_oracle_only():
    report = explore(_fixture("order-dependent"), seeds=6)
    assert report.divergences, "oracle missed the order-dependent log"
    assert not report.races  # no tagged structure involved
    divergence = report.divergences[0]
    assert divergence.first_divergent_round is not None
    assert divergence.schedule_a != divergence.schedule_b
    assert any("observations.log" in path for path in divergence.state_diffs)


def test_rogue_direct_write_fixture_caught_by_tracker_only():
    report = explore(_fixture("rogue-direct-write"), seeds=6)
    assert not report.divergences  # the write is deterministic...
    kinds = {race.kind for race in report.races}
    assert kinds == {"unmediated-write"}  # ...but still unmediated
    [race] = report.races
    assert race.pump == "rg:rogue"
    assert race.target == "kv/rg1/b"


def test_queue_theft_fixture_caught_by_both_detectors():
    report = explore(_fixture("queue-theft"), seeds=12)
    kinds = {race.kind for race in report.races}
    assert "queue-theft" in kinds
    assert all(race.pump == "qt:thief" for race in report.races)
    assert report.divergences, "stolen mutations should distort the index"
    assert any("views" in path
               for divergence in report.divergences
               for path in divergence.state_diffs)


def test_fixture_findings_are_reproducible():
    report_a = explore(_fixture("order-dependent"), seeds=4)
    report_b = explore(_fixture("order-dependent"), seeds=4)
    assert [run.digest for run in report_a.runs] == \
        [run.digest for run in report_b.runs]


# -- built-in scenarios: the schedule-independence property -------------------------


def test_kv_durability_holds_under_ten_plus_shuffled_seeds():
    report = explore(_builtin("kv-durability"), seeds=10)
    assert len(report.runs) >= 11  # baseline + 10 shuffles + adversarial
    assert report.clean, [d.format() for d in report.divergences] + \
        [r.format() for r in report.races]
    assert len({run.digest for run in report.runs}) == 1


def test_xdcr_conflict_resolution_holds_under_ten_plus_shuffled_seeds():
    report = explore(_builtin("xdcr-bidirectional"), seeds=10)
    assert report.clean, [d.format() for d in report.divergences] + \
        [r.format() for r in report.races]
    assert len({run.digest for run in report.runs}) == 1


@pytest.mark.parametrize("name", ["failover-replica-promote", "views-gsi-index"])
def test_remaining_builtin_scenarios_are_clean(name):
    report = explore(_builtin(name), seeds=4)
    assert report.clean, [d.format() for d in report.divergences] + \
        [r.format() for r in report.races]


def test_same_seed_same_run_record():
    scenario = _builtin("kv-durability")
    first = run_scenario(scenario, SeededShuffle(5))
    second = run_scenario(scenario, SeededShuffle(5))
    assert first.digest == second.digest
    assert first.traces == second.traces


def test_durability_observe_recorded_per_chain_node():
    record = run_scenario(_builtin("kv-durability"), SeededShuffle(1))
    observed = record.state["observations"]["observe"]
    assert len(observed) == 12
    for probes in observed.values():
        assert len(probes) == 2  # active + replica
        for _node, exists, persisted in probes:
            # Deleted keys observe as absent; survivors must be persisted
            # on every chain node (persist_to=1 plus full quiescence).
            assert (not exists) or persisted
