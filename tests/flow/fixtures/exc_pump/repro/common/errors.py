"""Fixture error taxonomy."""


class ReproError(Exception):
    pass


class NodeDownError(ReproError):
    pass
