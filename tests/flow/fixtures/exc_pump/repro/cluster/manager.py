"""Broken fixture: a scheduler pump raises an undeclared error
(expected: exception-escape on the pump entry point)."""

from ..common.errors import NodeDownError


class Manager:
    def __init__(self, scheduler):
        self.scheduler = scheduler
        self.scheduler.register("heartbeat", self._pump)

    def _pump(self):
        raise NodeDownError("node1")
