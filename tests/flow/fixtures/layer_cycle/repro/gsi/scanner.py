"""Broken fixture, half two: eagerly imports its own importer
(expected: import-cycle)."""

from .planner import plan


def run_scan(name):
    return plan(name)
