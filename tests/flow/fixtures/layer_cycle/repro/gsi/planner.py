"""Broken fixture, half one: eagerly imports its own importer
(expected: import-cycle)."""

from .scanner import run_scan


def plan(name):
    return run_scan(name)
