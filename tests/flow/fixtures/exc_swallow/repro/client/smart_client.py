"""Broken fixture: a handler swallows KeyNotFoundError with a bare
pass (expected: swallowed-exception)."""

from ..common.errors import KeyNotFoundError


def _lookup(key):
    raise KeyNotFoundError(key)


class SmartClient:
    def get_quietly(self, key):
        try:
            return _lookup(key)
        except KeyNotFoundError:
            pass
        return None
