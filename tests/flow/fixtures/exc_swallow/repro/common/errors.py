"""Fixture error taxonomy."""


class ReproError(Exception):
    pass


class KeyNotFoundError(ReproError):
    pass
