"""Broken fixture: a public client method lets KeyNotFoundError escape
without an @declared_raises contract (expected: exception-escape)."""

from ..common.errors import KeyNotFoundError


def _lookup(key):
    raise KeyNotFoundError(key)


class SmartClient:
    def get(self, key):
        return _lookup(key)
