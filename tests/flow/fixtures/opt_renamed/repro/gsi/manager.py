"""Broken fixture: scan_consistency is handed to a public callee under
a different parameter name (expected: option-renamed)."""


def run_scan(name, consistency="not_bounded"):
    return (name, consistency)


class Coordinator:
    def scan(self, name, scan_consistency="not_bounded"):
        return run_scan(name, consistency=scan_consistency)
