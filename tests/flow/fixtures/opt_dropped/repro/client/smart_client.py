"""Broken fixture: the caller takes replicate_to and the callee accepts
it, but the call does not pass it on (expected: option-dropped)."""


def _store(key, value, replicate_to=0):
    return (key, value, replicate_to)


class SmartClient:
    def upsert(self, key, value, replicate_to=0):
        return _store(key, value)
