"""Fixture upper layer (rank 5)."""


class ClusterManager:
    def nodes(self):
        return []
