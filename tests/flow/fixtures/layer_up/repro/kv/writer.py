"""Broken fixture: the kv layer (rank 2) imports the cluster layer
(rank 5) -- an upward import (expected: layer-violation)."""

from ..cluster.manager import ClusterManager


def managed_write(key, value):
    return (ClusterManager(), key, value)
