"""Broken fixture: dispatches on scan_consistency but never handles
at_plus, silently degrading the stronger mode (expected:
option-domain)."""


def run_scan(scan_consistency="not_bounded"):
    if scan_consistency == "request_plus":
        return "barrier"
    return "immediate"
