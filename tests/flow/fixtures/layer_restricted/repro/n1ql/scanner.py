"""Broken fixture: n1ql reaches into the node-local engine instead of
going through the fabric (expected: layer-restricted)."""

from ..kv.engine import KVEngine


def scan_all():
    return KVEngine().get("k")
