"""Fixture engine module (import-restricted)."""


class KVEngine:
    def get(self, key):
        return key
