"""Every broken fixture must fail with exactly its intended check, and
the tree itself must analyze clean -- the tier-1 gate that keeps the
flow invariants true going forward, mirroring the CI ``repro-flow``
step (and the shape of ``tests/lint/test_tree_clean.py``)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.flow.callgraph import build_callgraph
from repro.flow.cli import main
from repro.flow.excflow import analyze_exceptions
from repro.flow.layers import analyze_layers
from repro.flow.options import analyze_options
from repro.flow.project import Project

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: fixture directory -> the single check its defect must trip.
EXPECTED = {
    "exc_undeclared": "exception-escape",
    "exc_swallow": "swallowed-exception",
    "exc_pump": "exception-escape",
    "opt_dropped": "option-dropped",
    "opt_renamed": "option-renamed",
    "opt_domain": "option-domain",
    "layer_up": "layer-violation",
    "layer_restricted": "layer-restricted",
    "layer_cycle": "import-cycle",
}


def test_every_fixture_is_covered():
    assert sorted(EXPECTED) == sorted(
        p.name for p in FIXTURES.iterdir() if p.is_dir()
    )


@pytest.mark.parametrize("fixture,check", sorted(EXPECTED.items()))
def test_fixture_fails_with_its_intended_check(fixture, check, capsys):
    code = main([str(FIXTURES / fixture), "--profile", "strict"])
    out = capsys.readouterr().out
    assert code == 1, out
    finding_lines = [
        line for line in out.splitlines()
        if line and not line.startswith("repro-flow:")
    ]
    assert finding_lines, out
    assert all(f" {check}: " in line for line in finding_lines), out


def _tree_findings():
    files = sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    project = Project.build(files)
    assert not project.parse_errors
    graph = build_callgraph(project)
    return (list(analyze_exceptions(graph).findings)
            + list(analyze_options(graph))
            + list(analyze_layers(project)), project)


def test_repro_package_is_strictly_clean():
    findings, project = _tree_findings()
    from repro.analysis import suppressed

    def kept(finding):
        module = next(
            (m for m in project.modules.values() if m.path == finding.path),
            None,
        )
        return module is None or not suppressed(
            finding.check, finding.line, module.suppressions
        )

    remaining = [f for f in findings if kept(f)]
    assert remaining == [], "\n".join(f.format() for f in remaining)


def test_tree_clean_through_the_cli(capsys):
    code = main([str(REPO_ROOT / "src" / "repro"), "--profile", "strict"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert out.startswith("repro-flow: 0 findings"), out
