"""Call-graph builder edge cases: scheduler pumps and timers,
``functools.partial``, fabric dispatch-by-string (direct and through a
forwarder), ``__init__`` re-exports (eager and ``_LAZY``), and property
loads."""

from __future__ import annotations

import textwrap

from repro.flow.callgraph import build_callgraph
from repro.flow.project import Project


def _build(tmp_path, files: dict[str, str]):
    """Write a mini ``repro`` tree and build its call graph."""
    for rel, source in files.items():
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    project = Project.build(sorted((tmp_path / "repro").rglob("*.py")))
    return build_callgraph(project)


def _edges(graph, kind: str) -> set[tuple[str, str]]:
    return {(e.caller, e.callee) for e in graph.edges if e.kind == kind}


class TestPumpsAndTimers:
    def test_scheduler_register_records_a_pump(self, tmp_path):
        graph = _build(tmp_path, {"cluster/manager.py": """
            class Manager:
                def __init__(self, scheduler):
                    self.scheduler = scheduler
                    self.scheduler.register("heartbeat", self._pump)

                def _pump(self):
                    return True
            """})
        assert [(p.kind, p.name, p.target) for p in graph.pumps] == [
            ("pump", "heartbeat", "repro.cluster.manager.Manager._pump"),
        ]
        # Registration is reachability, not invocation: a pump edge, not
        # a call edge.
        assert ("repro.cluster.manager.Manager.__init__",
                "repro.cluster.manager.Manager._pump") in _edges(graph, "pump")
        assert _edges(graph, "call") == set()

    def test_call_later_records_a_timer(self, tmp_path):
        graph = _build(tmp_path, {"cluster/manager.py": """
            class Manager:
                def __init__(self, scheduler):
                    self.scheduler = scheduler

                def arm(self):
                    self.scheduler.call_later(5.0, self._fire)

                def _fire(self):
                    return True
            """})
        assert [(p.kind, p.target) for p in graph.pumps] == [
            ("timer", "repro.cluster.manager.Manager._fire"),
        ]


class TestFunctoolsPartial:
    def test_partial_creates_a_partial_edge(self, tmp_path):
        graph = _build(tmp_path, {"cluster/worker.py": """
            import functools


            def work(bucket, key):
                return (bucket, key)


            def bind(bucket):
                return functools.partial(work, bucket)
            """})
        assert ("repro.cluster.worker.bind",
                "repro.cluster.worker.work") in _edges(graph, "partial")
        # partial() over-approximates reachability but is not a call.
        assert _edges(graph, "call") == set()

    def test_bare_partial_import_is_recognized(self, tmp_path):
        graph = _build(tmp_path, {"cluster/worker.py": """
            from functools import partial


            def work(key):
                return key


            def bind():
                return partial(work, "k")
            """})
        assert ("repro.cluster.worker.bind",
                "repro.cluster.worker.work") in _edges(graph, "partial")


class TestRpcDispatchByString:
    def test_direct_network_call_resolves_to_endpoint_method(self, tmp_path):
        graph = _build(tmp_path, {
            "cluster/node.py": """
            class Node:
                def __init__(self, network):
                    self.network = network
                    self.network.register("node1", self)

                def kv_get(self, bucket, key):
                    return (bucket, key)
            """,
            "client/basic.py": """
            class BasicClient:
                def __init__(self, network):
                    self.network = network

                def get(self, bucket, key):
                    return self.network.call("c", "node1", "kv_get",
                                             bucket, key)
            """,
        })
        assert ("repro.client.basic.BasicClient.get",
                "repro.cluster.node.Node.kv_get") in _edges(graph, "rpc")
        assert "repro.cluster.node.Node.kv_get" in \
            graph.rpc_handlers.get("kv_get", [])

    def test_forwarded_method_name_resolves_at_the_literal_site(
            self, tmp_path):
        """The smart-client pattern: ``_call`` forwards its ``method``
        parameter to ``network.call``; the rpc edge lands on the caller
        that passes the string literal."""
        graph = _build(tmp_path, {
            "cluster/node.py": """
            class Node:
                def __init__(self, network):
                    self.network = network
                    self.network.register("node1", self)

                def kv_get(self, bucket, key):
                    return (bucket, key)

                def kv_delete(self, bucket, key):
                    return None
            """,
            "client/smart.py": """
            class SmartClient:
                def __init__(self, network):
                    self.network = network

                def _call(self, method, bucket, key):
                    return self.network.call("c", "node1", method,
                                             bucket, key)

                def get(self, bucket, key):
                    return self._call("kv_get", bucket, key)
            """,
        })
        assert graph.forwarders == {
            "repro.client.smart.SmartClient._call": "method",
        }
        rpc = _edges(graph, "rpc")
        assert ("repro.client.smart.SmartClient.get",
                "repro.cluster.node.Node.kv_get") in rpc
        # No literal ever names kv_delete: no rpc edge reaches it.
        assert all(callee != "repro.cluster.node.Node.kv_delete"
                   for _caller, callee in rpc)

    def test_dynamically_attached_handler_resolves(self, tmp_path):
        """``node.gsi_apply = self.indexer.apply`` makes ``gsi_apply``
        dispatchable even though Node has no such method."""
        graph = _build(tmp_path, {
            "cluster/node.py": """
            class Node:
                def __init__(self, network):
                    self.network = network
                    self.network.register("node1", self)
            """,
            "gsi/indexer.py": """
            class Indexer:
                def apply(self, kv):
                    return kv


            class IndexService:
                def __init__(self, node):
                    self.indexer = Indexer()
                    node.gsi_apply = self.indexer.apply
            """,
            "gsi/coordinator.py": """
            class Coordinator:
                def __init__(self, network):
                    self.network = network

                def push(self, kv):
                    return self.network.call("co", "node1", "gsi_apply", kv)
            """,
        })
        assert ("repro.gsi.coordinator.Coordinator.push",
                "repro.gsi.indexer.Indexer.apply") in _edges(graph, "rpc")


class TestInitReexports:
    def test_eager_reexport_resolves_through_the_package(self, tmp_path):
        graph = _build(tmp_path, {
            "kv/__init__.py": "from .engine import KVEngine\n",
            "kv/engine.py": """
            class KVEngine:
                def get(self, key):
                    return key
            """,
            "cluster/node.py": """
            from ..kv import KVEngine


            class Node:
                def __init__(self):
                    self.engine = KVEngine()

                def read(self, key):
                    return self.engine.get(key)
            """,
        })
        assert ("repro.cluster.node.Node.read",
                "repro.kv.engine.KVEngine.get") in _edges(graph, "method")

    def test_lazy_reexport_resolves_through_the_package(self, tmp_path):
        graph = _build(tmp_path, {
            "n1ql/__init__.py": """
            _LAZY = {
                "Evaluator": ("expressions", "Evaluator"),
            }


            def __getattr__(name):
                module_name, attr = _LAZY[name]
                return None
            """,
            "n1ql/expressions.py": """
            class Evaluator:
                def evaluate(self, expr):
                    return expr
            """,
            "cluster/runner.py": """
            from ..n1ql import Evaluator


            class Runner:
                def __init__(self):
                    self.evaluator = Evaluator()

                def run(self, expr):
                    return self.evaluator.evaluate(expr)
            """,
        })
        assert ("repro.cluster.runner.Runner.run",
                "repro.n1ql.expressions.Evaluator.evaluate") in \
            _edges(graph, "method")


class TestPropertyLoads:
    def test_property_load_is_a_method_edge(self, tmp_path):
        """Reading a property executes its body: exception flow must
        cross the attribute load."""
        graph = _build(tmp_path, {"cluster/facade.py": """
            class Inner:
                def connect(self):
                    return self


            class Facade:
                def __init__(self):
                    self.inner = Inner()

                @property
                def client(self):
                    return self.inner.connect()

                def use(self):
                    return self.client
            """})
        assert ("repro.cluster.facade.Facade.use",
                "repro.cluster.facade.Facade.client") in \
            _edges(graph, "method")
