"""The ``python -m repro.flow`` front end: the 0/1/2 exit contract
shared with repro-lint and repro-sanitize, output formats, profiles,
suppressions, and the two helper modes."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.flow.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _write_tree(tmp_path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


CLEAN_TREE = {"common/util.py": """
    def double(value):
        return value * 2
    """}


class TestExitContract:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = _write_tree(tmp_path, CLEAN_TREE)
        assert main([str(root), "--profile", "strict"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main([str(FIXTURES / "exc_swallow"), "--profile", "strict"])
        assert code == 1
        assert "swallowed-exception" in capsys.readouterr().out

    def test_unknown_check_is_a_usage_error(self, capsys):
        code = main([str(FIXTURES / "exc_swallow"), "--check", "nonsense"])
        assert code == 2
        assert "unknown analysis" in capsys.readouterr().err

    def test_no_files_is_a_usage_error(self, tmp_path, capsys):
        code = main([str(tmp_path / "does-not-exist")])
        assert code == 2
        assert "no Python files" in capsys.readouterr().err

    def test_syntax_error_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        assert main([str(tmp_path)]) == 2
        assert "broken.py" in capsys.readouterr().err


class TestCheckSelection:
    def test_other_analyses_do_not_run(self, capsys):
        """A layering fixture is clean as far as option plumbing goes."""
        code = main([str(FIXTURES / "layer_up"), "--check", "options",
                     "--profile", "strict"])
        assert code == 0, capsys.readouterr().out

    def test_selected_analysis_still_fires(self, capsys):
        code = main([str(FIXTURES / "layer_up"), "--check", "layers",
                     "--profile", "strict"])
        assert code == 1
        assert "layer-violation" in capsys.readouterr().out


class TestProfiles:
    def test_relaxed_exempts_exception_escape(self, capsys):
        """Fixture trees live outside src/repro, so auto resolves to
        relaxed -- no @declared_raises contract is required there."""
        assert main([str(FIXTURES / "exc_undeclared")]) == 0
        capsys.readouterr()

    def test_relaxed_still_flags_swallowed_exceptions(self, capsys):
        assert main([str(FIXTURES / "exc_swallow")]) == 1
        capsys.readouterr()


class TestSuppressions:
    def test_disable_next_silences_the_finding(self, tmp_path, capsys):
        root = _write_tree(tmp_path, {
            "common/errors.py": """
            class ReproError(Exception):
                pass


            class KeyNotFoundError(ReproError):
                pass
            """,
            "client/smart_client.py": """
            from ..common.errors import KeyNotFoundError


            def _lookup(key):
                raise KeyNotFoundError(key)


            class SmartClient:
                def get_quietly(self, key):
                    try:
                        return _lookup(key)
                    # Absence is an expected answer here.
                    # repro-flow: disable-next=swallowed-exception
                    except KeyNotFoundError:
                        return None
            """,
        })
        assert main([str(root), "--profile", "strict"]) == 0
        capsys.readouterr()


class TestOutputFormats:
    def test_github_format_emits_error_commands(self, capsys):
        code = main([str(FIXTURES / "opt_dropped"), "--profile", "strict",
                     "--format", "github", "-q"])
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("::error ")
        assert "title=repro-flow" in out and "option-dropped" in out

    def test_quiet_drops_the_summary_line(self, tmp_path, capsys):
        root = _write_tree(tmp_path, CLEAN_TREE)
        assert main([str(root), "--profile", "strict", "-q"]) == 0
        assert capsys.readouterr().out == ""


class TestHelperModes:
    def test_dead_code_report_is_informational(self, tmp_path, capsys):
        root = _write_tree(tmp_path, {"common/util.py": """
            def used():
                return unused_helper is not None


            def unused_helper():
                return None
            """})
        assert main([str(root), "--report", "dead-code"]) == 0
        out = capsys.readouterr().out
        assert "not a gate" in out

    def test_suggest_raises_prints_a_decorator(self, capsys):
        code = main([str(FIXTURES / "exc_undeclared"), "--suggest-raises"])
        out = capsys.readouterr().out
        assert code == 0
        assert "@declared_raises('KeyNotFoundError')" in out
