"""Unit tests for the admission-control building blocks: token buckets,
seeded backoff, bulkheads, the circuit-breaker state machine under the
deterministic scheduler, and the controller's shed-N1QL-before-KV
degradation order."""

import pytest

from repro.admission import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionConfig,
    AdmissionController,
    Bulkhead,
    CircuitBreaker,
    ExponentialBackoff,
    TokenBucket,
)
from repro.common.clock import VirtualClock
from repro.common.errors import AdmissionRejectedError, TemporaryFailureError
from repro.common.scheduler import Scheduler


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def scheduler(clock):
    return Scheduler(clock)


class TestTokenBucket:
    def test_unlimited_by_default(self, clock):
        bucket = TokenBucket(clock)
        assert all(bucket.try_acquire() for _ in range(10_000))
        assert bucket.deficit_delay() == 0.0

    def test_burst_then_reject(self, clock):
        bucket = TokenBucket(clock, rate=10.0, burst=3.0)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_with_virtual_time(self, clock):
        bucket = TokenBucket(clock, rate=10.0, burst=2.0)
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire()
        clock.advance(0.1)  # 1 token refilled
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self, clock):
        bucket = TokenBucket(clock, rate=100.0, burst=2.0)
        clock.advance(60.0)
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire()

    def test_deficit_delay_is_the_retry_hint(self, clock):
        bucket = TokenBucket(clock, rate=10.0, burst=1.0)
        assert bucket.try_acquire()
        delay = bucket.deficit_delay()
        assert delay == pytest.approx(0.1)
        clock.advance(delay)
        assert bucket.try_acquire()


class TestExponentialBackoff:
    def test_grows_and_caps(self):
        backoff = ExponentialBackoff(base=0.01, factor=2.0, max_delay=0.05,
                                     jitter=0.0, seed=7)
        delays = [backoff.delay(attempt) for attempt in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_only_shrinks_and_is_seeded(self):
        first = ExponentialBackoff(base=0.01, jitter=0.5, seed=42)
        second = ExponentialBackoff(base=0.01, jitter=0.5, seed=42)
        other = ExponentialBackoff(base=0.01, jitter=0.5, seed=43)
        a = [first.delay(i) for i in range(1, 8)]
        b = [second.delay(i) for i in range(1, 8)]
        c = [other.delay(i) for i in range(1, 8)]
        assert a == b  # same seed, same stream
        assert a != c  # different seed decorrelates
        for attempt, delay in enumerate(a, start=1):
            raw = min(0.01 * 2.0 ** (attempt - 1), 0.25)
            assert 0.5 * raw <= delay <= raw


class TestBulkhead:
    def test_uncapped_by_default(self):
        bulkhead = Bulkhead("kv")
        assert all(bulkhead.try_enter() for _ in range(100))
        assert bulkhead.rejected == 0

    def test_cap_rejects_and_exit_frees(self):
        bulkhead = Bulkhead("n1ql", max_inflight=2)
        assert bulkhead.try_enter()
        assert bulkhead.try_enter()
        assert not bulkhead.try_enter()
        assert bulkhead.rejected == 1
        bulkhead.exit()
        assert bulkhead.try_enter()
        assert bulkhead.peak_inflight == 2


class TestCircuitBreaker:
    def make(self, scheduler, **overrides):
        params = dict(threshold=3, cooldown=0.2, factor=2.0,
                      max_cooldown=5.0, jitter=0.25, seed=11)
        params.update(overrides)
        return CircuitBreaker("node1", scheduler, **params)

    def test_opens_after_threshold_consecutive_failures(self, scheduler):
        breaker = self.make(scheduler)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.remaining() > 0.0

    def test_success_resets_the_failure_run(self, scheduler):
        breaker = self.make(scheduler)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_timer_driven_half_open_then_close(self, clock, scheduler):
        breaker = self.make(scheduler)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        # The cooldown timer fires during a virtual-time advance; no
        # allow() poll is needed for the transition.
        scheduler.advance(breaker.open_until - clock.now())
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe is admitted
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.remaining() == 0.0

    def test_clock_fallback_without_timer_drain(self, clock, scheduler):
        breaker = self.make(scheduler)
        for _ in range(3):
            breaker.record_failure()
        # Advance the raw clock only: timers never pump, but allow()
        # must still recover via its clock check.
        clock.advance(breaker.open_until + 1.0)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_failed_probe_escalates_cooldown(self, clock, scheduler):
        breaker = self.make(scheduler, jitter=0.0)
        for _ in range(3):
            breaker.record_failure()
        first_cooldown = breaker.open_until - clock.now()
        scheduler.advance(first_cooldown)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # probe failed
        assert breaker.state == OPEN
        second_cooldown = breaker.open_until - clock.now()
        assert second_cooldown == pytest.approx(first_cooldown * 2.0)
        # A successful probe after the next cooldown resets the ladder.
        scheduler.advance(second_cooldown)
        breaker.record_success()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.open_until - clock.now() == pytest.approx(first_cooldown)

    def test_same_seed_same_jittered_schedule(self):
        def open_times(seed):
            clock = VirtualClock()
            scheduler = Scheduler(clock)
            breaker = self.make(scheduler, seed=seed)
            times = []
            for _ in range(4):
                while breaker.state == CLOSED:
                    breaker.record_failure()
                times.append(breaker.open_until)
                scheduler.advance(breaker.open_until - clock.now())
                breaker.record_failure()  # fail every probe: escalate
                times.append(breaker.open_until)
                scheduler.advance(breaker.open_until - clock.now())
                breaker.record_success()
            return times

        assert open_times(5) == open_times(5)
        assert open_times(5) != open_times(6)


class TestController:
    def make(self, scheduler, **overrides):
        config = AdmissionConfig(**overrides)
        return AdmissionController(scheduler, config=config)

    def test_permissive_defaults_admit_everything(self, scheduler):
        controller = self.make(scheduler)
        for _ in range(1000):
            release = controller.acquire("kv", "client1")
            release()
        assert controller.metrics.counter_value("admission.requests") == 1000

    def test_tenant_rate_shed_carries_retry_hint(self, scheduler):
        controller = self.make(scheduler, tenant_rate=10.0, tenant_burst=2.0)
        controller.acquire("kv", "t1")()
        controller.acquire("kv", "t1")()
        with pytest.raises(AdmissionRejectedError) as exc_info:
            controller.acquire("kv", "t1")
        assert exc_info.value.retry_after == pytest.approx(0.1)
        assert isinstance(exc_info.value, TemporaryFailureError)
        # Tenants are isolated: a different tenant still has its burst.
        controller.acquire("kv", "t2")()

    def test_unconfigured_tenant_gets_fair_share_not_a_free_pass(
            self, scheduler):
        """Regression: once a deployment configures a service budget, a
        tenant nobody provisioned must NOT be unlimited -- it gets
        ``tenant_fair_share`` of the service budget, so one greedy
        handle cannot starve the tenants an operator actually set up."""
        controller = self.make(
            scheduler,
            service_rates={"kv": (10.0, 10.0)},
            tenant_rates={"vip": (10.0, 4.0)},
        )
        # The greedy unconfigured tenant hits its half-budget wall...
        for _ in range(5):
            controller.acquire("kv", "greedy")()
        with pytest.raises(AdmissionRejectedError):
            controller.acquire("kv", "greedy")
        # ...while the explicitly provisioned tenant is still admitted.
        for _ in range(4):
            controller.acquire("kv", "vip")()

    def test_fair_share_only_applies_with_a_service_budget(self, scheduler):
        controller = self.make(scheduler)
        for _ in range(100):
            controller.acquire("kv", "anyone")()

    def test_overload_weight_scales_with_error_metadata(self, scheduler):
        controller = self.make(scheduler)
        controller.note_overload("flat")
        deep_error = TemporaryFailureError(
            retry_after=0.1, pending_writes=512, memory_ratio=1.5)
        controller.note_overload("deep", deep_error)
        assert controller._pressure["flat"][0] == pytest.approx(1.0)
        # 1.0 base + 512/pressure_depth_scale + (1.5 - 1.0) overshoot.
        assert controller._pressure["deep"][0] == pytest.approx(3.5)

    def test_overload_weight_is_capped(self, scheduler):
        controller = self.make(scheduler)
        monster = TemporaryFailureError(
            retry_after=0.1, pending_writes=10 ** 6, memory_ratio=9.0)
        controller.note_overload("node1", monster)
        assert controller._pressure["node1"][0] == pytest.approx(
            controller.config.pressure_weight_cap)

    def test_service_bulkhead_isolates_compartments(self, scheduler):
        controller = self.make(scheduler, service_inflight={"n1ql": 1})
        held = controller.acquire("n1ql", "q")
        with pytest.raises(AdmissionRejectedError):
            controller.acquire("n1ql", "q")
        # The KV compartment is untouched by the full n1ql one.
        controller.acquire("kv", "app")()
        held()
        controller.acquire("n1ql", "q")()
        assert controller.metrics.counter_value("admission.n1ql.shed") == 1
        assert controller.metrics.counter_value("admission.kv.shed") == 0

    def test_shed_order_n1ql_before_kv_under_pressure(self, clock, scheduler):
        controller = self.make(scheduler, shed_threshold=1.0)
        controller.note_overload("node1")
        assert controller.overloaded()
        with pytest.raises(AdmissionRejectedError):
            controller.admit_query()
        # KV point ops keep flowing through the same controller.
        controller.acquire("kv", "app")()
        # Pressure decays with virtual time; queries come back.
        clock.advance(10.0)
        assert not controller.overloaded()
        release = controller.admit_query()
        if release is not None:
            release()

    def test_open_breaker_sheds_queries(self, clock, scheduler):
        controller = self.make(scheduler, breaker_threshold=1)
        controller.breaker("node1").record_failure()
        assert controller.overloaded()
        with pytest.raises(AdmissionRejectedError):
            controller.admit_query()
        scheduler.advance(controller.breaker("node1").open_until - clock.now())
        controller.breaker("node1").record_success()
        assert not controller.overloaded()

    def test_fabric_filter_ignores_unregistered_pumps(self, scheduler):
        controller = self.make(scheduler, node_inflight=1)
        assert controller.fabric_filter("flusher/node1/b", "node1", "x") is None
        controller.register_client("client1", "kv")
        release = controller.fabric_filter("client1", "node1", "kv_get")
        with pytest.raises(AdmissionRejectedError):
            controller.fabric_filter("client1", "node1", "kv_get")
        release()
        controller.fabric_filter("client1", "node1", "kv_get")()

    def test_backoff_advances_virtual_time_not_a_quiesce(self, clock,
                                                         scheduler):
        controller = self.make(scheduler)
        pumped = []
        scheduler.register("noisy", lambda: (pumped.append(1), True)[1])
        before_rounds = scheduler._round
        controller.backoff(1, hint=0.05)
        # Bounded relief: at most relief_steps rounds, never a drain of
        # the always-busy pump.
        assert scheduler._round - before_rounds <= controller.config.relief_steps
        assert clock.now() >= 0.05

    def test_snapshot_shape(self, scheduler):
        controller = self.make(scheduler, service_inflight={"n1ql": 2})
        controller.note_overload("node2")
        controller.breaker("node2").record_failure()
        release = controller.acquire("n1ql", "q")
        snapshot = controller.snapshot()
        assert snapshot["pressure"]["node2"] > 0
        assert snapshot["breakers"]["node2"] == CLOSED
        assert snapshot["bulkheads"]["n1ql"]["inflight"] == 1
        release()
