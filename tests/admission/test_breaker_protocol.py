"""Protocol coverage for the circuit breaker: the declared CircuitBreaker
lifecycle must be picked up by repro-proto's inventory, and the inventory
must find exactly the breaker's real transition sites -- no more (no
unrelated ``state`` fields dragged in), no fewer (no invisible writes)."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.flow.project import Project
from repro.proto import ProtoInventory, collect_protocols

BREAKER = Path(repro.__file__).resolve().parent / "admission" / "breaker.py"


def breaker_inventory():
    project = Project.build([BREAKER])
    specs = collect_protocols(project)
    return specs, ProtoInventory(project, specs)


class TestBreakerProtocolCoverage:
    def test_declaration_is_discovered(self):
        specs, _inventory = breaker_inventory()
        assert "CircuitBreaker" in specs
        spec = specs["CircuitBreaker"]
        assert spec.kind == "field"
        assert spec.field == "state"
        assert spec.states == {"CLOSED", "OPEN", "HALF_OPEN"}
        assert ("CLOSED", "OPEN") in spec.transitions
        # The defect repro-proto found: OPEN->CLOSED is *not* declared.
        assert ("OPEN", "CLOSED") not in spec.transitions

    def test_binding_is_the_breakers_state_field(self):
        _specs, inventory = breaker_inventory()
        bindings = [b for b in inventory.bindings
                    if b.spec.name == "CircuitBreaker"]
        assert len(bindings) == 1
        assert bindings[0].attr == "state"
        assert bindings[0].owner.endswith("CircuitBreaker")

    def test_inventory_finds_exactly_the_transition_sites(self):
        _specs, inventory = breaker_inventory()
        sites = [s for s in inventory.sites
                 if s.binding.spec.name == "CircuitBreaker"]
        by_kind = {}
        for site in sites:
            by_kind.setdefault(site.kind, set()).add(
                site.func.rsplit(".", 1)[-1])
        # Establishment in __init__, one literal write per transition
        # method -- and nothing else touches the field.
        assert by_kind == {
            "init": {"__init__"},
            "write": {"_open", "_to_half_open", "_close"},
        }
        assert len(sites) == 4
        dsts = {s.func.rsplit(".", 1)[-1]: s.dst
                for s in sites if s.kind == "write"}
        assert dsts == {
            "_open": "OPEN",
            "_to_half_open": "HALF_OPEN",
            "_close": "CLOSED",
        }
