"""Cluster-level GSI tests: projector/router flow, DDL with placement,
deferred builds, partitioned indexes, scan consistency, and MDS."""

import pytest

from repro import Cluster
from repro.common.errors import (
    IndexExistsError,
    IndexNotFoundError,
    IndexNotReadyError,
    ServiceUnavailableError,
)
from repro.gsi import array_index, attribute_index, primary_index
from repro.gsi.indexdef import IndexDefinition, path_extractor


@pytest.fixture
def cluster():
    cluster = Cluster(nodes=3, vbuckets=16)
    cluster.create_bucket("b")
    return cluster


@pytest.fixture
def client(cluster):
    return cluster.connect()


def load(client, n=30):
    for i in range(n):
        client.upsert("b", f"u{i}", {
            "name": f"user{i:02d}",
            "age": 20 + i % 10,
            "tags": [f"t{i % 3}", "common"],
        })


class TestDdl:
    def test_create_after_data_builds(self, cluster, client):
        load(client)
        cluster.create_index(attribute_index("by_age", "b", "age"))
        rows = cluster.gsi.scan("by_age")
        assert len(rows) == 30

    def test_create_before_data_maintains(self, cluster, client):
        cluster.create_index(attribute_index("by_age", "b", "age"))
        load(client, 10)
        cluster.run_until_idle()
        assert len(cluster.gsi.scan("by_age")) == 10

    def test_duplicate_name_rejected(self, cluster):
        cluster.create_index(attribute_index("i", "b", "age"))
        with pytest.raises(IndexExistsError):
            cluster.create_index(attribute_index("i", "b", "name"))

    def test_drop(self, cluster, client):
        cluster.create_index(attribute_index("i", "b", "age"))
        cluster.drop_index("i")
        with pytest.raises(IndexNotFoundError):
            cluster.gsi.scan("i")

    def test_drop_unknown(self, cluster):
        with pytest.raises(IndexNotFoundError):
            cluster.drop_index("ghost")

    def test_deferred_build(self, cluster, client):
        load(client)
        cluster.create_index(primary_index("pk", "b", deferred=True))
        with pytest.raises(IndexNotReadyError):
            cluster.gsi.scan("pk")
        cluster.gsi.build_index("pk")
        assert len(cluster.gsi.scan("pk")) == 30

    def test_list_indexes(self, cluster):
        cluster.create_index(attribute_index("i1", "b", "age"))
        cluster.create_index(primary_index("pk", "b"))
        described = cluster.gsi.list_indexes("b")
        assert {d["name"] for d in described} == {"i1", "pk"}
        primary = next(d for d in described if d["name"] == "pk")
        assert primary["is_primary"]

    def test_placement_spreads_by_load(self, cluster):
        for i in range(6):
            cluster.create_index(attribute_index(f"i{i}", "b", "age"))
        hosted = [
            len(cluster.node(f"node{n}").indexer.indexer.instances)
            for n in (1, 2, 3)
        ]
        assert max(hosted) - min(hosted) <= 1

    def test_explicit_placement(self, cluster):
        meta = cluster.create_index(
            attribute_index("i", "b", "age"), nodes=["node2"]
        )
        assert meta.nodes == ["node2"]
        assert "i" in cluster.node("node2").indexer.indexer.instances


class TestMaintenance:
    def test_update_moves_entry(self, cluster, client):
        cluster.create_index(attribute_index("by_age", "b", "age"))
        client.upsert("b", "u1", {"age": 30})
        cluster.run_until_idle()
        client.upsert("b", "u1", {"age": 40})
        cluster.run_until_idle()
        assert cluster.gsi.scan("by_age", low=[30], high=[30]) == []
        assert [d for _, d in cluster.gsi.scan("by_age", low=[40], high=[40])] == ["u1"]

    def test_delete_removes_entry(self, cluster, client):
        cluster.create_index(attribute_index("by_age", "b", "age"))
        client.upsert("b", "u1", {"age": 30})
        cluster.run_until_idle()
        client.remove("b", "u1")
        cluster.run_until_idle()
        assert cluster.gsi.scan("by_age") == []

    def test_doc_leaving_partial_condition(self, cluster, client):
        cluster.create_index(attribute_index(
            "over21", "b", "age",
            condition=lambda doc, _id: doc.get("age", 0) > 21,
            condition_source="age > 21",
        ))
        client.upsert("b", "u1", {"age": 30})
        cluster.run_until_idle()
        assert len(cluster.gsi.scan("over21")) == 1
        client.upsert("b", "u1", {"age": 18})
        cluster.run_until_idle()
        assert cluster.gsi.scan("over21") == []

    def test_array_index_maintenance(self, cluster, client):
        cluster.create_index(array_index("tags", "b", "tags"))
        load(client, 9)
        cluster.run_until_idle()
        rows = cluster.gsi.scan("tags", low=["common"], high=["common"])
        assert len(rows) == 9
        rows = cluster.gsi.scan("tags", low=["t0"], high=["t0"])
        assert len(rows) == 3


class TestScans:
    def test_range_scan_sorted(self, cluster, client):
        load(client)
        cluster.create_index(attribute_index("by_name", "b", "name"))
        rows = cluster.gsi.scan("by_name", low=["user05"], high=["user10"])
        names = [key[0] for key, _ in rows]
        assert names == sorted(names)
        assert names[0] == "user05" and names[-1] == "user10"

    def test_scan_limit(self, cluster, client):
        load(client)
        cluster.create_index(attribute_index("by_name", "b", "name"))
        rows = cluster.gsi.scan("by_name", limit=7)
        assert len(rows) == 7

    def test_scan_descending(self, cluster, client):
        load(client, 10)
        cluster.create_index(attribute_index("by_name", "b", "name"))
        rows = cluster.gsi.scan("by_name", descending=True, limit=3)
        names = [key[0] for key, _ in rows]
        assert names == sorted(names, reverse=True)

    def test_composite_scan(self, cluster, client):
        cluster.create_index(attribute_index("combo", "b", "age", "name"))
        load(client, 20)
        cluster.run_until_idle()
        rows = cluster.gsi.scan("combo", low=[25], high=[25, {"zz": 1}])
        assert all(key[0] == 25 for key, _ in rows)
        names = [key[1] for key, _ in rows]
        assert names == sorted(names)


class TestScanConsistency:
    def test_not_bounded_can_miss_fresh_writes(self, cluster, client):
        cluster.create_index(attribute_index("by_age", "b", "age"))
        engine = cluster.node("node1").engines["b"]
        vb = engine.owned_vbuckets()[0]
        engine.upsert(vb, "direct", {"age": 99})
        rows = cluster.gsi.scan("by_age", low=[99], high=[99],
                                scan_consistency="not_bounded")
        assert rows == []

    def test_request_plus_sees_all_prior_writes(self, cluster, client):
        cluster.create_index(attribute_index("by_age", "b", "age"))
        engine = cluster.node("node1").engines["b"]
        vb = engine.owned_vbuckets()[0]
        engine.upsert(vb, "direct", {"age": 99})
        rows = cluster.gsi.scan("by_age", low=[99], high=[99],
                                scan_consistency="request_plus")
        assert [d for _, d in rows] == ["direct"]

    def test_unknown_consistency_rejected(self, cluster, client):
        cluster.create_index(attribute_index("by_age", "b", "age"))
        with pytest.raises(ValueError):
            cluster.gsi.scan("by_age", scan_consistency="linearizable")


class TestPartitionedIndex:
    def make_partitioned(self, cluster):
        definition = IndexDefinition(
            name="part",
            bucket="b",
            key_sources=["name"],
            extractors=[path_extractor("name")],
            num_partitions=3,
        )
        return cluster.create_index(definition)

    def test_partitions_spread_over_nodes(self, cluster, client):
        meta = self.make_partitioned(cluster)
        assert len(set(meta.nodes)) == 3

    def test_partitioned_scan_merges_sorted(self, cluster, client):
        load(client)
        cluster.run_until_idle()
        self.make_partitioned(cluster)
        rows = cluster.gsi.scan("part", scan_consistency="request_plus")
        names = [key[0] for key, _ in rows]
        assert len(names) == 30
        assert names == sorted(names)

    def test_partitioned_maintenance(self, cluster, client):
        self.make_partitioned(cluster)
        load(client, 12)
        cluster.run_until_idle()
        assert len(cluster.gsi.scan("part", scan_consistency="request_plus")) == 12
        client.remove("b", "u3")
        cluster.run_until_idle()
        rows = cluster.gsi.scan("part", scan_consistency="request_plus")
        assert len(rows) == 11


class TestMemoptIndex:
    def test_memopt_index_works_end_to_end(self, cluster, client):
        load(client)
        cluster.create_index(
            attribute_index("fast", "b", "age", storage="memopt")
        )
        rows = cluster.gsi.scan("fast", low=[25], high=[26],
                                scan_consistency="request_plus")
        assert all(key[0] in (25, 26) for key, _ in rows)

    def test_memopt_keeps_up_with_writes(self, cluster, client):
        cluster.create_index(
            attribute_index("fast", "b", "age", storage="memopt")
        )
        load(client, 20)
        cluster.run_until_idle()
        assert len(cluster.gsi.scan("fast")) == 20


class TestMds:
    def test_index_requires_index_service(self):
        cluster = Cluster(nodes=[("d1", {"data"}), ("q1", {"query"})],
                          vbuckets=8)
        cluster.create_bucket("b")
        with pytest.raises(ServiceUnavailableError):
            cluster.create_index(attribute_index("i", "b", "age"))

    def test_index_lands_on_index_node_only(self):
        cluster = Cluster(
            nodes=[("d1", {"data"}), ("d2", {"data"}), ("i1", {"index"})],
            vbuckets=8,
        )
        cluster.create_bucket("b")
        client = cluster.connect()
        for i in range(10):
            client.upsert("b", f"k{i}", {"age": i})
        meta = cluster.create_index(attribute_index("byage", "b", "age"))
        assert meta.nodes == ["i1"]
        assert len(cluster.gsi.scan("byage", scan_consistency="request_plus")) == 10


class TestTopology:
    def test_index_maintained_through_rebalance(self, cluster, client):
        load(client)
        cluster.create_index(attribute_index("by_age", "b", "age"))
        cluster.add_node("node4")
        cluster.rebalance()
        client.upsert("b", "fresh", {"age": 25})
        cluster.run_until_idle()
        rows = cluster.gsi.scan("by_age", scan_consistency="request_plus")
        assert len(rows) == 31

    def test_index_maintained_after_failover(self, cluster, client):
        load(client)
        # Host the index away from the node we kill.
        cluster.create_index(attribute_index("by_age", "b", "age"),
                             nodes=["node1"])
        cluster.failover("node3")
        client.upsert("b", "fresh", {"age": 25})
        cluster.run_until_idle()
        rows = cluster.gsi.scan("by_age", scan_consistency="request_plus")
        assert len(rows) == 31
