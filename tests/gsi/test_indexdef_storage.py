"""Tests for index definitions and the two storage backends."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.disk import SimulatedDisk
from repro.gsi.indexdef import (
    IndexDefinition,
    array_index,
    attribute_index,
    path_extractor,
    primary_index,
)
from repro.gsi.storage import (
    BTreeIndexStorage,
    SkipListIndexStorage,
    make_storage,
)
from repro.n1ql.collation import MISSING


class TestExtraction:
    def test_single_attribute(self):
        index = attribute_index("i", "b", "age")
        assert index.entries_for({"age": 30}, "d1") == [[30]]

    def test_missing_leading_key_not_indexed(self):
        index = attribute_index("i", "b", "age")
        assert index.entries_for({"name": "x"}, "d1") == []

    def test_composite_keys(self):
        index = attribute_index("i", "b", "country", "city")
        assert index.entries_for({"country": "US", "city": "SF"}, "d1") == [
            ["US", "SF"]
        ]

    def test_composite_trailing_missing_still_indexed(self):
        index = attribute_index("i", "b", "country", "city")
        entries = index.entries_for({"country": "US"}, "d1")
        assert entries == [["US", MISSING]]

    def test_dotted_path(self):
        index = attribute_index("i", "b", "address.zip")
        assert index.entries_for({"address": {"zip": "94040"}}, "d1") == [["94040"]]

    def test_deleted_doc(self):
        index = attribute_index("i", "b", "age")
        assert index.entries_for(None, "d1") == []

    def test_partial_index_condition(self):
        """The paper's over-21 selective index (section 3.3.4)."""
        index = attribute_index(
            "over21", "b", "age",
            condition=lambda doc, doc_id: doc.get("age", 0) > 21,
            condition_source="age > 21",
        )
        assert index.entries_for({"age": 30}, "d1") == [[30]]
        assert index.entries_for({"age": 18}, "d2") == []

    def test_condition_exception_means_skip(self):
        index = attribute_index(
            "i", "b", "age",
            condition=lambda doc, doc_id: doc["zzz"] > 0,
        )
        assert index.entries_for({"age": 30}, "d1") == []

    def test_primary_index_extracts_id(self):
        index = primary_index("pk", "b")
        assert index.entries_for({"any": 1}, "doc-42") == [["doc-42"]]
        assert index.is_primary

    def test_array_index_expands(self):
        index = array_index("tags", "b", "tags")
        entries = index.entries_for({"tags": ["a", "b"]}, "d1")
        assert entries == [["a"], ["b"]]

    def test_array_index_distinct(self):
        index = array_index("tags", "b", "tags")
        entries = index.entries_for({"tags": ["a", "a", "b"]}, "d1")
        assert entries == [["a"], ["b"]]

    def test_array_index_non_array_skipped(self):
        index = array_index("tags", "b", "tags")
        assert index.entries_for({"tags": "scalar"}, "d1") == []

    def test_validation(self):
        with pytest.raises(ValueError):
            IndexDefinition("i", "b", [], [])
        with pytest.raises(ValueError):
            IndexDefinition("i", "b", ["a"], [path_extractor("a")],
                            storage="papier")


@pytest.fixture(params=["standard", "memopt"])
def storage(request):
    return make_storage(request.param, SimulatedDisk(), "test.index")


class TestStorageBackends:
    def test_kind_dispatch(self):
        disk = SimulatedDisk()
        assert isinstance(make_storage("standard", disk, "f"), BTreeIndexStorage)
        assert isinstance(make_storage("memopt", disk, "f"), SkipListIndexStorage)
        with pytest.raises(ValueError):
            make_storage("other", disk, "f")

    def test_update_and_scan(self, storage):
        storage.update_doc("d1", [[5]])
        storage.update_doc("d2", [[3]])
        storage.update_doc("d3", [[7]])
        rows = list(storage.scan(None, None))
        assert [key[0] for key, _ in rows] == [3, 5, 7]

    def test_update_replaces(self, storage):
        storage.update_doc("d1", [[5]])
        storage.update_doc("d1", [[9]])
        rows = list(storage.scan(None, None))
        assert rows == [([9], "d1")]
        assert storage.count() == 1

    def test_remove_via_empty_entries(self, storage):
        storage.update_doc("d1", [[5]])
        storage.update_doc("d1", [])
        assert storage.count() == 0

    def test_range_bounds(self, storage):
        for i in range(10):
            storage.update_doc(f"d{i}", [[i]])
        rows = list(storage.scan([3], [6]))
        assert [key[0] for key, _ in rows] == [3, 4, 5, 6]

    def test_exclusive_bounds(self, storage):
        for i in range(10):
            storage.update_doc(f"d{i}", [[i]])
        rows = list(storage.scan([3], [6], inclusive_low=False,
                                 inclusive_high=False))
        assert [key[0] for key, _ in rows] == [4, 5]

    def test_descending(self, storage):
        for i in range(5):
            storage.update_doc(f"d{i}", [[i]])
        rows = list(storage.scan([1], [3], descending=True))
        assert [key[0] for key, _ in rows] == [3, 2, 1]

    def test_duplicate_keys_different_docs(self, storage):
        storage.update_doc("d1", [[5]])
        storage.update_doc("d2", [[5]])
        rows = list(storage.scan([5], [5]))
        assert [(key[0], doc) for key, doc in rows] == [(5, "d1"), (5, "d2")]

    def test_missing_component_roundtrips(self, storage):
        storage.update_doc("d1", [["US", MISSING]])
        rows = list(storage.scan(None, None))
        assert rows[0][0] == ["US", MISSING]

    def test_multi_entry_docs(self, storage):
        storage.update_doc("d1", [["a"], ["b"]])
        assert storage.count() == 2
        storage.update_doc("d1", [["c"]])
        rows = list(storage.scan(None, None))
        assert [key[0] for key, _ in rows] == ["c"]

    def test_mixed_type_keys_collate(self, storage):
        storage.update_doc("d1", [["str"]])
        storage.update_doc("d2", [[10]])
        storage.update_doc("d3", [[None]])
        storage.update_doc("d4", [[True]])
        rows = [key[0] for key, _ in storage.scan(None, None)]
        assert rows == [None, True, 10, "str"]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["d1", "d2", "d3", "d4"]),
                  st.lists(st.integers(0, 50), min_size=0, max_size=3)),
        max_size=25,
    ))
    def test_backends_agree(self, operations):
        """Both storage backends must produce identical scans for any
        operation sequence."""
        disk = SimulatedDisk()
        btree = make_storage("standard", disk, "a.index")
        skiplist = make_storage("memopt", disk, "b.index")
        for doc_id, keys in operations:
            entries = [[k] for k in keys]
            btree.update_doc(doc_id, entries)
            skiplist.update_doc(doc_id, entries)
        assert list(btree.scan(None, None)) == list(skiplist.scan(None, None))
        assert btree.count() == skiplist.count()


class TestMemoptSnapshot:
    def test_snapshot_and_recover(self):
        disk = SimulatedDisk()
        storage = SkipListIndexStorage(disk, "idx")
        for i in range(20):
            storage.update_doc(f"d{i}", [[i]])
        written = storage.snapshot_to_disk()
        assert written > 0

        recovered = SkipListIndexStorage(disk, "idx")
        assert recovered.load_snapshot() == 20
        assert list(recovered.scan(None, None)) == list(storage.scan(None, None))

    def test_snapshot_without_disk_raises(self):
        storage = SkipListIndexStorage()
        with pytest.raises(ValueError):
            storage.snapshot_to_disk()

    def test_memopt_reports_memory_not_disk(self):
        storage = SkipListIndexStorage(SimulatedDisk(), "idx")
        storage.update_doc("d1", [[1]])
        assert storage.memory_bytes() > 0
        assert storage.disk_bytes() == 0

    def test_standard_reports_disk(self):
        storage = BTreeIndexStorage(SimulatedDisk(), "idx")
        storage.update_doc("d1", [[1]])
        assert storage.disk_bytes() > 0
