"""Cross-datacenter replication (XDCR).

Section 4.6: replicate active data between geographically distant
clusters "either for disaster recovery or to bring data closer to
users".  This example runs two clusters -- "us-east" and "eu-west" with
deliberately different sizes and partition counts -- and demonstrates:

* unidirectional replication for disaster recovery,
* bidirectional replication with deterministic conflict resolution
  (section 4.6.1: most updates wins, same winner on both sides),
* filtered replication by key prefix, and
* continued replication through a target-cluster failover (topology
  awareness).

Run:  python examples/xdcr_geo_replication.py
"""

from repro import Cluster
from repro.common.errors import KeyNotFoundError
from repro.xdcr import XdcrReplication, settle


def main() -> None:
    us_east = Cluster(nodes=3, vbuckets=64)
    eu_west = Cluster(nodes=2, vbuckets=32)  # different topology on purpose
    us_east.create_bucket("users", replicas=1)
    eu_west.create_bucket("users", replicas=1)
    us = us_east.connect()
    eu = eu_west.connect()

    # -- disaster recovery: one-way replication ------------------------------------
    print("== unidirectional XDCR (disaster recovery) ==")
    east_to_west = XdcrReplication(us_east, eu_west, "users")
    for i in range(100):
        us.upsert("users", f"user::{i:04d}", {"home": "us", "n": i})
    settle(us_east, eu_west)
    assert eu.get("users", "user::0042").value["n"] == 42
    print("  100 documents replicated us-east -> eu-west "
          f"(sent={east_to_west.docs_sent})")

    # -- go active-active ---------------------------------------------------------------
    print("\n== bidirectional XDCR with a concurrent conflict ==")
    XdcrReplication(eu_west, us_east, "users")
    # The same profile is edited on both continents before replication
    # catches up; the copy with more updates must win everywhere.
    us.upsert("users", "user::0007", {"home": "us", "nickname": "east-1"})
    us.upsert("users", "user::0007", {"home": "us", "nickname": "east-2"})
    eu.upsert("users", "user::0007", {"home": "us", "nickname": "west-1"})
    settle(us_east, eu_west)
    east_view = us.get("users", "user::0007").value
    west_view = eu.get("users", "user::0007").value
    print(f"  us-east sees {east_view['nickname']!r}, "
          f"eu-west sees {west_view['nickname']!r}")
    assert east_view == west_view == {"home": "us", "nickname": "east-2"}
    print("  both clusters picked the same winner (most updates)")

    # -- filtered replication --------------------------------------------------------------
    print("\n== filtered replication (only eu:: keys go west) ==")
    us_east.create_bucket("events", replicas=0)
    eu_west.create_bucket("events", replicas=0)
    filtered = XdcrReplication(us_east, eu_west, "events",
                               filter_pattern=r"^eu::")
    us2 = us_east.connect()
    us2.upsert("events", "eu::login::1", {"region": "eu"})
    us2.upsert("events", "us::login::1", {"region": "us"})
    settle(us_east, eu_west)
    eu2 = eu_west.connect()
    assert eu2.get("events", "eu::login::1").value["region"] == "eu"
    try:
        eu2.get("events", "us::login::1")
        raise AssertionError("us:: keys must not replicate")
    except KeyNotFoundError:
        pass
    print(f"  replicated eu:: keys only "
          f"(filtered out: {filtered.docs_filtered})")

    # -- topology awareness ---------------------------------------------------------------
    print("\n== replication through a target failover ==")
    eu_west.failover("node2")
    for i in range(100, 150):
        us.upsert("users", f"user::{i:04d}", {"home": "us", "n": i})
    settle(us_east, eu_west)
    assert eu.get("users", "user::0149").value["n"] == 149
    print("  us-east kept replicating to the surviving eu-west node")

    print("\nxdcr_geo_replication OK")


if __name__ == "__main__":
    main()
