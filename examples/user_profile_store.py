"""A population-scale user-profile store.

The paper's introduction motivates the system with exactly this
workload: "applications like user profile stores" with sub-millisecond
latency expectations, hundreds of thousands of operations per second,
and per-operation durability choices.  This example shows the patterns
such an application uses:

* optimistic locking with CAS (the section 3.1.1 retry loop),
* pessimistic get-and-lock for the rare must-win update,
* per-mutation durability (replicate before acking a password change),
* TTL'd session documents, and
* a N1QL secondary-index lookup for the admin path.

Run:  python examples/user_profile_store.py
"""

from repro import Cluster
from repro.common.errors import CasMismatchError, DocumentLockedError


def make_cluster() -> Cluster:
    cluster = Cluster(nodes=3, vbuckets=64)
    cluster.create_bucket("profiles", replicas=1)
    return cluster


def optimistic_update(client, key: str, mutate) -> None:
    """The CAS retry loop the paper walks through in section 3.1.1."""
    while True:
        doc = client.get("profiles", key)
        new_value = mutate(dict(doc.value))
        try:
            client.upsert("profiles", key, new_value, cas=doc.meta.cas)
            return
        except CasMismatchError:
            continue  # someone got there first; re-read and retry


def main() -> None:
    cluster = make_cluster()
    client = cluster.connect()

    # Seed some profiles.
    for i in range(50):
        client.upsert("profiles", f"user::{i:04d}", {
            "type": "profile",
            "name": f"member{i:04d}",
            "email": f"member{i:04d}@example.com",
            "points": 0,
            "plan": "free" if i % 3 else "pro",
        })

    # -- optimistic concurrency under contention ---------------------------------
    print("== optimistic locking ==")
    contended = "user::0007"
    # Two "application servers" race on the same profile; CAS sorts it out.
    server_a = cluster.connect()
    server_b = cluster.connect()
    doc_a = server_a.get("profiles", contended)
    doc_b = server_b.get("profiles", contended)
    server_b.upsert("profiles", contended,
                    dict(doc_b.value, points=10), cas=doc_b.meta.cas)
    try:
        server_a.upsert("profiles", contended,
                        dict(doc_a.value, points=99), cas=doc_a.meta.cas)
        raise AssertionError("stale CAS must fail")
    except CasMismatchError:
        print("server A lost the race (CAS mismatch), retrying...")
    optimistic_update(server_a, contended,
                      lambda v: dict(v, points=v["points"] + 5))
    final = client.get("profiles", contended)
    print(f"final points: {final.value['points']} (10 from B, +5 from A)")
    assert final.value["points"] == 15

    # -- pessimistic locking -------------------------------------------------------
    print("\n== get-and-lock ==")
    locked = client.get_and_lock("profiles", "user::0001", lock_time=10.0)
    try:
        cluster.connect().upsert("profiles", "user::0001", {"x": 1})
        raise AssertionError("locked doc must reject writers")
    except DocumentLockedError:
        print("other writers blocked while the lock is held")
    client.upsert("profiles", "user::0001",
                  dict(locked.value, verified=True), cas=locked.meta.cas)
    print("lock holder updated and released the lock")

    # -- durability choices (section 2.3.2) ------------------------------------------
    print("\n== per-mutation durability ==")
    client.upsert("profiles", "user::0002",
                  dict(client.get("profiles", "user::0002").value,
                       password_hash="argon2:..."),
                  replicate_to=1, persist_to=1)
    print("password change acknowledged only after 1 replica + 1 disk copy")

    # -- TTL sessions ------------------------------------------------------------------
    print("\n== sessions with TTL ==")
    now = cluster.clock.now()
    client.upsert("profiles", "session::abc",
                  {"user": "user::0007", "token": "xyz"},
                  expiry=now + 1800)
    print("session valid:", client.get("profiles", "session::abc").value["user"])
    cluster.tick(3600)  # half an hour passes twice
    from repro.common.errors import KeyNotFoundError
    try:
        client.get("profiles", "session::abc")
        raise AssertionError("session should have expired")
    except KeyNotFoundError:
        print("session expired after its TTL")

    # -- the admin path: N1QL over a secondary index -----------------------------------
    print("\n== admin lookups via N1QL ==")
    cluster.query("CREATE INDEX by_plan ON profiles(plan, name) USING GSI")
    rows = cluster.query(
        "SELECT p.name FROM profiles p WHERE p.plan = 'pro' "
        "ORDER BY p.name LIMIT 5",
        scan_consistency="request_plus",
    ).rows
    print(f"first pro members: {[r['name'] for r in rows]}")
    assert len(rows) == 5

    print("\nuser_profile_store OK")


if __name__ == "__main__":
    main()
