"""Cluster operations: elastic scaling, failover, and multi-dimensional
scaling.

The introduction demands systems that "scale elastically with demand
while being always available"; section 4 describes the machinery.  This
example walks through the operational lifecycle:

1. grow the cluster and rebalance (section 4.3.1),
2. crash a node and watch auto-failover promote replicas,
3. rebalance again to restore redundancy, and
4. build a service-segregated (MDS) topology (section 4.4).

Run:  python examples/cluster_operations.py
"""

from repro import Cluster
from repro.common.services import Service


def spread(cluster, bucket="data"):
    stats = cluster.manager.cluster_maps[bucket].stats()
    return stats["active_per_node"]


def main() -> None:
    cluster = Cluster(nodes=2, vbuckets=64)
    cluster.create_bucket("data", replicas=1)
    client = cluster.connect()

    print("== load 500 documents on a 2-node cluster ==")
    for i in range(500):
        client.upsert("data", f"doc::{i:05d}", {"n": i})
    cluster.run_until_idle()
    print(f"  active vBuckets per node: {spread(cluster)}")

    # -- scale out ---------------------------------------------------------------
    print("\n== scale out to 4 nodes and rebalance ==")
    cluster.add_node("node3")
    cluster.add_node("node4")
    report = cluster.rebalance()
    print(f"  moved {report['data']['moves']} vBuckets; "
          f"map revision {report['data']['map_revision']}")
    print(f"  active vBuckets per node: {spread(cluster)}")
    counts = spread(cluster).values()
    assert max(counts) - min(counts) <= 1

    # Data is intact and clients with stale maps retry transparently.
    for i in range(0, 500, 50):
        assert client.get("data", f"doc::{i:05d}").value == {"n": i}
    print("  all documents still reachable after the rebalance")

    # -- failure and auto-failover -------------------------------------------------
    print("\n== crash node2; auto-failover after the detection timeout ==")
    cluster.crash_node("node2")
    cluster.tick(31.0)  # past the 30s auto-failover timeout
    assert "node2" in cluster.manager.ejected
    print(f"  orchestrator is now {cluster.manager.orchestrator!r}; "
          f"node2 ejected")
    for i in range(0, 500, 50):
        assert client.get("data", f"doc::{i:05d}").value == {"n": i}
    print("  zero data loss: replicas were promoted to active")

    print("\n== rebalance to restore one-replica redundancy ==")
    cluster.rebalance()
    stats = cluster.manager.cluster_maps["data"].stats()
    assert stats["unassigned_active"] == 0
    print(f"  active vBuckets per node: {spread(cluster)}")

    # Writes continue throughout.
    client.upsert("data", "post-failover", {"ok": True})
    assert client.get("data", "post-failover").value == {"ok": True}

    # -- multi-dimensional scaling ----------------------------------------------------
    print("\n== multi-dimensional scaling (section 4.4) ==")
    mds = Cluster(nodes=[
        ("data1", {"data"}), ("data2", {"data"}),     # memory-heavy nodes
        ("index1", {"index"}),                        # fast-disk node
        ("query1", {"query"}), ("query2", {"query"}),  # many-core nodes
    ], vbuckets=32)
    mds.create_bucket("b")
    mds_client = mds.connect()
    for i in range(100):
        mds_client.upsert("b", f"k{i}", {"v": i, "bucket_of": i % 10})
    mds.query("CREATE INDEX by_v ON b(v) USING GSI")
    meta = mds.manager.index_registry.require("by_v")
    rows = mds.query("SELECT b.v FROM b WHERE b.v BETWEEN 10 AND 14",
                     scan_consistency="request_plus").rows
    print(f"  index lives on {meta.nodes}, query served by "
          f"{mds.service_node(Service.QUERY).name}, "
          f"data on data1/data2 -> {len(rows)} rows")
    assert meta.nodes == ["index1"]
    assert len(rows) == 5

    print("\ncluster_operations OK")


if __name__ == "__main__":
    main()
