"""Quickstart: a tour of the three access paths.

The paper's central pitch -- "have your data and query it too" -- is that
one system serves key-value access, view queries, and N1QL queries over
the same documents.  This script spins up a 4-node in-process cluster
and exercises all three paths.

Run:  python examples/quickstart.py
"""

from repro import Cluster
from repro.views import ViewDefinition


def main() -> None:
    # A 4-node cluster, every node running data+index+query services
    # (the topology of the paper's Figure 14 evaluation setup).
    cluster = Cluster(nodes=4, vbuckets=64)
    cluster.create_bucket("profiles", replicas=1)
    client = cluster.connect()

    # -- access path 1: key-value (section 3.1.1) --------------------------
    print("== key-value access ==")
    client.upsert("profiles", "borkar123", {
        "name": "Dipti",
        "email": "dipti@couchbase.com",
    })
    doc = client.get("profiles", "borkar123")
    print(f"GET borkar123 -> {doc.value}  (cas={doc.meta.cas})")

    # Optimistic concurrency: re-write with the CAS we read.
    updated = dict(doc.value, title="Director of PM")
    client.upsert("profiles", "borkar123", updated, cas=doc.meta.cas)
    print(f"CAS update applied: {client.get('profiles', 'borkar123').value}")

    # -- access path 2: view query (section 3.1.2) --------------------------
    print("\n== view access ==")

    def profile_view(doc, meta, emit):
        if "name" in doc:
            emit(doc["name"], doc.get("email"))

    cluster.define_view("profiles", ViewDefinition("dd", "profile",
                                                   profile_view))
    for i in range(10):
        client.upsert("profiles", f"user::{i}",
                      {"name": f"user{i}", "email": f"u{i}@example.com"})
    result = cluster.views.query("profiles", "dd", "profile",
                                 stale="false", key="Dipti")
    print(f"view lookup key='Dipti' -> {result.rows}")

    # -- access path 3: N1QL (sections 3.1.3, 3.2) ----------------------------
    print("\n== N1QL access ==")
    cluster.query("CREATE PRIMARY INDEX ON profiles USING GSI")
    cluster.query("CREATE INDEX by_name ON profiles(name) USING GSI")

    rows = cluster.query(
        "SELECT p.name, p.email FROM profiles p "
        "WHERE p.name LIKE 'user%' ORDER BY p.name LIMIT 3",
        scan_consistency="request_plus",
    ).rows
    for row in rows:
        print(f"  {row}")

    explain = cluster.query(
        "EXPLAIN SELECT p.email FROM profiles p WHERE p.name = 'user3'")
    print(f"plan uses: {explain.rows[0]['~children'][0]['index']}")

    assert len(rows) == 3
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
