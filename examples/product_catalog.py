"""Catalog and SKU management.

The paper's introduction names "catalog and SKU management systems
[that] need the ability to change and update information on the fly" as
a driving workload.  This example models a product catalog with nested
JSON (variants inside products, orders referencing products) and uses
the N1QL features the paper highlights:

* UNNEST to flatten nested variant arrays (section 3.2.3),
* NEST to assemble a user's orders into one document (the paper's
  example query, section 3.2.3),
* an array index over categories (section 6.1.2),
* a partial index over in-stock products (section 3.3.4),
* a covering index for the hot listing query (section 5.1.2), and
* GROUP BY analytics over the catalog.

Run:  python examples/product_catalog.py
"""

from repro import Cluster

CATEGORIES = ["audio", "video", "gaming", "home"]


def load_catalog(client) -> None:
    for i in range(60):
        client.upsert("catalog", f"product::{i:04d}", {
            "doc_type": "product",
            "name": f"Gadget {i:04d}",
            "price": 9.99 + i,
            "in_stock": i % 4 != 0,
            "categories": [CATEGORIES[i % 4], CATEGORIES[(i + 1) % 4]],
            "variants": [
                {"sku": f"SKU-{i:04d}-S", "size": "S", "stock": i % 5},
                {"sku": f"SKU-{i:04d}-L", "size": "L", "stock": (i + 3) % 7},
            ],
        })
    # A user profile with an embedded order history, as in the paper's
    # NEST example.
    client.upsert("catalog", "profile::borkar123", {
        "doc_type": "user_profile",
        "personal_details": {"name": "Dipti"},
        "shipped_order_history": [
            {"order_id": "order::1"}, {"order_id": "order::2"},
        ],
    })
    client.upsert("catalog", "order::1", {
        "doc_type": "order", "product": "product::0001", "qty": 2,
    })
    client.upsert("catalog", "order::2", {
        "doc_type": "order", "product": "product::0017", "qty": 1,
    })


def main() -> None:
    cluster = Cluster(nodes=3, vbuckets=64)
    cluster.create_bucket("catalog")
    client = cluster.connect()
    load_catalog(client)
    cluster.query("CREATE PRIMARY INDEX ON catalog USING GSI")

    # -- the paper's NEST example, almost verbatim -------------------------------
    print("== NEST: assemble a user's orders ==")
    rows = cluster.query(
        "SELECT po.personal_details, orders "
        "FROM catalog po USE KEYS 'profile::borkar123' "
        "NEST catalog AS orders "
        "ON KEYS ARRAY s.order_id FOR s IN po.shipped_order_history END",
        scan_consistency="request_plus",
    ).rows
    print(f"  {rows[0]['personal_details']} has "
          f"{len(rows[0]['orders'])} orders nested in one result")
    assert len(rows[0]["orders"]) == 2

    # -- the paper's UNNEST example -------------------------------------------------
    print("\n== UNNEST: list the in-use product categories ==")
    rows = cluster.query(
        "SELECT DISTINCT categories FROM catalog product "
        "UNNEST product.categories AS categories "
        "WHERE product.doc_type = 'product'",
        scan_consistency="request_plus",
    ).rows
    print(f"  categories in use: {sorted(r['categories'] for r in rows)}")
    assert len(rows) == 4

    # -- array index over categories (4.5 feature, section 6.1.2) ----------------------
    print("\n== array index ==")
    cluster.query(
        "CREATE INDEX by_category ON catalog"
        "(DISTINCT ARRAY c FOR c IN categories END) USING GSI")
    audio = cluster.gsi.scan("by_category", low=["audio"], high=["audio"],
                             scan_consistency="request_plus")
    print(f"  {len(audio)} products tagged 'audio' via the array index")

    # -- partial index over in-stock products (section 3.3.4) ----------------------------
    print("\n== partial index ==")
    cluster.query(
        "CREATE INDEX in_stock_price ON catalog(price) "
        "WHERE in_stock = TRUE USING GSI")
    explain = cluster.query(
        "EXPLAIN SELECT c.price FROM catalog c "
        "WHERE c.in_stock = TRUE AND c.price > 50")
    scan = explain.rows[0]["~children"][0]
    print(f"  planner chose: {scan['index']} (covered={bool(scan.get('covers'))})")
    assert scan["index"] == "in_stock_price"

    # -- covering index for the hot listing query (section 5.1.2) -------------------------
    print("\n== covering index ==")
    cluster.query("CREATE INDEX listing ON catalog(name, price) USING GSI")
    explain = cluster.query(
        "EXPLAIN SELECT c.name, c.price FROM catalog c "
        "WHERE c.name LIKE 'Gadget 00%'")
    ops = [op["#operator"] for op in explain.rows[0]["~children"]]
    print(f"  plan: {ops} (no Fetch -- answered from the index alone)")
    assert "Fetch" not in ops

    # -- catalog analytics -----------------------------------------------------------------
    print("\n== GROUP BY analytics ==")
    rows = cluster.query(
        "SELECT cat, COUNT(*) AS products, "
        "       ROUND(AVG(product.price), 2) AS avg_price "
        "FROM catalog product UNNEST product.categories AS cat "
        "WHERE product.doc_type = 'product' "
        "GROUP BY cat ORDER BY cat",
        scan_consistency="request_plus",
    ).rows
    for row in rows:
        print(f"  {row['cat']:>7}: {row['products']} products, "
              f"avg ${row['avg_price']}")
    assert sum(r["products"] for r in rows) == 120  # 60 products x 2 tags

    # -- on-the-fly updates, the intro's requirement -----------------------------------------
    print("\n== sub-document price update via N1QL ==")
    result = cluster.query(
        "UPDATE catalog c SET c.price = c.price * 0.9 "
        "WHERE c.doc_type = 'product' AND c.price > 60 "
        "RETURNING meta(c).id",
        scan_consistency="request_plus",
    )
    print(f"  discounted {result.mutation_count} products")
    assert result.mutation_count > 0

    print("\nproduct_catalog OK")


if __name__ == "__main__":
    main()
