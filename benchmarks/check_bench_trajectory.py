"""Bench-trajectory gate: fail CI when the query pipeline slows down.

Compares the p50 service time per mode in a freshly emitted
``BENCH_query_pipeline.json`` against the committed baseline under
``benchmarks/baselines/`` and exits 1 if any mode regressed more than
the threshold (default 25%).  Getting *faster* never fails; the gate is
a one-sided trajectory check, not a reproducibility assertion -- the
absolute numbers move with the host, which is why the tolerance is wide
and the comparison is per mode rather than against a wall-clock budget.

Usage::

    python benchmarks/check_bench_trajectory.py \
        BENCH_query_pipeline.json benchmarks/baselines/BENCH_query_pipeline.json

Exit status mirrors the analysis gates: 0 within bounds, 1 regression,
2 usage error (missing or malformed files).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.25


class TrajectoryFormatError(Exception):
    """Malformed or incomplete bench report (usage error, exit 2)."""


def load_modes(path: Path) -> dict[str, float]:
    report = json.loads(path.read_text())
    modes = report.get("modes")
    if not isinstance(modes, dict) or not modes:
        raise TrajectoryFormatError(f"{path}: no 'modes' section")
    p50s = {}
    for label, stats in modes.items():
        p50 = stats.get("p50_us")
        if not isinstance(p50, (int, float)) or p50 <= 0:
            raise TrajectoryFormatError(
                f"{path}: mode {label!r} has no positive p50_us")
        p50s[label] = float(p50)
    return p50s


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when emitted bench p50s regress past the "
                    "committed baseline.")
    parser.add_argument("emitted", help="freshly emitted bench JSON")
    parser.add_argument("baseline", help="committed baseline bench JSON")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional p50 regression per mode "
                             "(default 0.25 = +25%%)")
    args = parser.parse_args(argv)

    try:
        emitted = load_modes(Path(args.emitted))
        baseline = load_modes(Path(args.baseline))
    except (OSError, TrajectoryFormatError,
            json.JSONDecodeError) as exc:
        print(f"bench-trajectory: {exc}", file=sys.stderr)
        return 2

    missing = sorted(set(baseline) - set(emitted))
    if missing:
        print(f"bench-trajectory: emitted report lacks mode(s) "
              f"{', '.join(missing)}", file=sys.stderr)
        return 2

    regressed = False
    for label in sorted(baseline):
        base = baseline[label]
        seen = emitted[label]
        delta = seen / base - 1.0
        status = "ok"
        if delta > args.threshold:
            status = "REGRESSED"
            regressed = True
        print(f"  {label:<18} p50 {base:8.0f} us -> {seen:8.0f} us "
              f"({delta:+6.1%})  {status}")
    if regressed:
        print(f"bench-trajectory: p50 regression above "
              f"{args.threshold:.0%} threshold", file=sys.stderr)
        return 1
    print(f"bench-trajectory: all modes within {args.threshold:.0%} "
          f"of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
