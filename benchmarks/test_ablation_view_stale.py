"""Ablation -- view staleness (section 3.1.2).

Views are eventually consistent; the ``stale`` parameter trades
freshness for latency: ``ok`` returns whatever is indexed, ``false``
first waits for the view indexer to catch up to the current document
set.  Same experiment shape as the GSI consistency ablation, on the
view engine.
"""

import pytest
from conftest import print_series

from repro import Cluster
from repro.views import ViewDefinition, ViewQueryParams

results = {}


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=3, vbuckets=32)
    cluster.create_bucket("b")
    client = cluster.connect()
    for i in range(200):
        client.upsert("b", f"k{i:04d}", {"age": i % 40})
    cluster.run_until_idle()

    def by_age(doc, meta, emit):
        if "age" in doc:
            emit(doc["age"], None)

    cluster.define_view("b", ViewDefinition("dd", "by_age", by_age, "_count"))
    cluster._bench_client = client
    return cluster


def _query_op(cluster, stale):
    client = cluster._bench_client

    def op():
        for i in range(40):
            client.upsert("b", f"hot{i}", {"age": i % 40})
        return cluster.views.query(
            "b", "dd", "by_age",
            ViewQueryParams(stale=stale, reduce=False, key=7),
        )

    return op


@pytest.mark.benchmark(group="view-stale")
def test_stale_ok(cluster, benchmark):
    benchmark(_query_op(cluster, "ok"))
    results["ok"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="view-stale")
def test_stale_update_after(cluster, benchmark):
    benchmark(_query_op(cluster, "update_after"))
    results["update_after"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="view-stale")
def test_stale_false(cluster, benchmark):
    benchmark(_query_op(cluster, "false"))
    results["false"] = benchmark.stats.stats.mean
    _report_and_assert()


def _report_and_assert():
    rows = [(f"stale={name}", f"{value * 1e3:.3f} ms")
            for name, value in results.items()]
    print_series(
        "Ablation: view query latency by stale= parameter",
        ("setting", "mean latency"),
        rows,
    )
    # stale=false pays for index convergence; ok/update_after do not.
    assert results["false"] > results["ok"]
