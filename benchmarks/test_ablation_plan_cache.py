"""Ablation -- expression compiler + ad-hoc plan cache on the hot path.

Section 4.5.3: "query parsing and planning are done serially" per
request, and the Figure 16 reproduction turns the measured per-query
service time into queries/sec -- so the serial front half plus the
per-row AST walk is directly benchmarked overhead.  This bench runs the
Figure 16 scan statement shape in three configurations:

* ``interpreted, cold``  -- expression compiler off, plan cache cleared
  before every request: the seed repo's parse -> plan -> tree-walk path.
* ``compiled, cold``     -- compiler on, plan cache cleared before every
  request: isolates the closure-compilation win.
* ``compiled + cached``  -- compiler on, warm plan cache: the full hot
  path (what repeated ad-hoc statements actually get).

Self-timed (no pytest-benchmark fixture) so CI can run it as a smoke
test with ``REPRO_ABLATION_ITERS=1``; the 2x acceptance assertion only
applies when enough iterations ran for the means to be meaningful.
"""

import os
import time

import pytest
from conftest import print_series

from repro import Cluster
from repro.common.services import Service
from repro.n1ql import compile as n1ql_compile

ITERS = int(os.environ.get("REPRO_ABLATION_ITERS", "400"))
#: Below this, means are noise; run the modes but skip the perf gate.
MIN_ITERS_FOR_ASSERT = 50

#: The Figure 16 / YCSB-E scan shape (see repro/ycsb/client.py).
SCAN_QUERY = ("SELECT meta().id AS id FROM `b` "
              "WHERE meta().id >= $1 LIMIT $2")
PARAMS = {"1": "u0100", "2": 20}


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=3, vbuckets=32)
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for i in range(300):
        client.upsert("b", f"u{i:04d}", {"field0": f"v{i:04d}"})
    cluster.run_until_idle()
    cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
    cluster.run_until_idle()
    return cluster


def _timed_mean(cluster, iters: int, *, compile_enabled: bool,
                clear_cache: bool) -> float:
    service = cluster.service_node(Service.QUERY).query_service

    def op():
        if clear_cache:
            service.plan_cache.clear()
        return cluster.query(SCAN_QUERY, params=PARAMS).rows

    previous = n1ql_compile.COMPILE_ENABLED
    n1ql_compile.COMPILE_ENABLED = compile_enabled
    try:
        rows = op()  # warm-up; also primes the cache for the cached mode
        assert len(rows) == 20
        assert rows[0]["id"] == "u0100"
        start = time.perf_counter()
        for _ in range(iters):
            op()
        return (time.perf_counter() - start) / iters
    finally:
        n1ql_compile.COMPILE_ENABLED = previous


def test_plan_cache_ablation(cluster):
    interpreted_cold = _timed_mean(cluster, ITERS, compile_enabled=False,
                                   clear_cache=True)
    compiled_cold = _timed_mean(cluster, ITERS, compile_enabled=True,
                                clear_cache=True)
    compiled_cached = _timed_mean(cluster, ITERS, compile_enabled=True,
                                  clear_cache=False)
    speedup = interpreted_cold / compiled_cached
    print_series(
        "Ablation: compiled + cached vs interpreted N1QL hot path "
        f"(Figure 16 scan shape, {ITERS} iters)",
        ("mode", "mean latency", "speedup"),
        [
            ("interpreted, cold", f"{interpreted_cold * 1e3:.3f} ms", "1.00x"),
            ("compiled, cold", f"{compiled_cold * 1e3:.3f} ms",
             f"{interpreted_cold / compiled_cold:.2f}x"),
            ("compiled + cached", f"{compiled_cached * 1e3:.3f} ms",
             f"{speedup:.2f}x"),
        ],
    )
    # Sanity: the plan cache actually served the cached mode.
    service = cluster.service_node(Service.QUERY).query_service
    assert service.node.metrics.counter_value("n1ql.plan_cache.hit") >= ITERS
    if ITERS >= MIN_ITERS_FOR_ASSERT:
        # Acceptance gate: the full hot path must at least halve the
        # per-query service time of the interpreted cold path.
        assert speedup >= 2.0, (
            f"compiled+cached only {speedup:.2f}x faster than interpreted"
        )
