"""Ablation -- node-grouped batching of bulk KV reads (section 4.1).

The smart client hashes every key and routes it straight to its
vBucket's active node; a naive bulk read therefore pays one network
round trip per key.  Grouping the keys by destination node and issuing
one ``kv_multi_get`` RPC per node turns N round trips into (at most)
one per data node -- the pipelining every production SDK does.  This
bench quantifies the gap on a 4-node cluster, both in round trips
(``Network.calls``) and in charged virtual network latency
(``Network.latency_charged``), and in wall-clock service time.
"""

import pytest
from conftest import print_series

from repro import Cluster

N_KEYS = 200
LATENCY = 0.0005  # 0.5 ms virtual LAN latency per RPC


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=4, vbuckets=64, network_latency=LATENCY)
    cluster.create_bucket("b")
    client = cluster.connect()
    client.multi_upsert(
        "b", {f"user{i:05d}": {"name": f"name{i:05d}", "i": i}
              for i in range(N_KEYS)}
    )
    cluster.run_until_idle()
    return cluster


results = {}


@pytest.mark.benchmark(group="bulk-read")
def test_per_key_bulk_read(cluster, benchmark):
    client = cluster.connect()
    keys = [f"user{i:05d}" for i in range(N_KEYS)]

    def op():
        return client.multi_get("b", keys, batched=False)

    found = benchmark(op)
    assert len(found) == N_KEYS
    cluster.network.reset_counters()
    client.multi_get("b", keys, batched=False)
    results["per_key"] = {
        "mean_s": benchmark.stats.stats.mean,
        "round_trips": sum(
            n for (_dst, m), n in cluster.network.calls.items()
            if m == "kv_get"
        ),
        "latency_charged": cluster.network.latency_charged,
    }


@pytest.mark.benchmark(group="bulk-read")
def test_batched_bulk_read(cluster, benchmark):
    client = cluster.connect()
    keys = [f"user{i:05d}" for i in range(N_KEYS)]

    def op():
        return client.multi_get("b", keys)

    found = benchmark(op)
    assert len(found) == N_KEYS
    cluster.network.reset_counters()
    client.multi_get("b", keys)
    results["batched"] = {
        "mean_s": benchmark.stats.stats.mean,
        "round_trips": sum(
            n for (_dst, m), n in cluster.network.calls.items()
            if m == "kv_multi_get"
        ),
        "latency_charged": cluster.network.latency_charged,
    }
    _report_and_assert()


def _report_and_assert():
    per_key, batched = results["per_key"], results["batched"]
    print_series(
        f"Batching ablation -- bulk read of {N_KEYS} keys, 4-node cluster",
        ("path", "round trips", "latency charged (s)", "mean service (s)"),
        [
            ("per-key", per_key["round_trips"],
             f"{per_key['latency_charged']:.4f}",
             f"{per_key['mean_s']:.6f}"),
            ("batched", batched["round_trips"],
             f"{batched['latency_charged']:.4f}",
             f"{batched['mean_s']:.6f}"),
        ],
    )
    # One routed round trip per key vs one batch RPC per involved node.
    assert per_key["round_trips"] == N_KEYS
    assert batched["round_trips"] <= 4
    # The acceptance bar: batching charges strictly less virtual network
    # latency for the same key set.
    assert batched["latency_charged"] < per_key["latency_charged"]
