"""Ablation -- append-only storage and compaction (section 4.3.3).

"With Couchbase's append-only storage engine design, document mutations
always go to the end of a file ... Compaction is periodically run, based
on a fragmentation threshold."  This bench measures (a) the raw cost of
a compaction pass, and (b) how the fragmentation threshold trades file
size against write amplification over a sustained overwrite workload.
"""

import pytest
from conftest import print_series

from repro.common.disk import SimulatedDisk
from repro.common.document import Document, DocumentMeta
from repro.storage.compaction import Compactor
from repro.storage.couchstore import VBucketStore


def _churn(store, rounds, keys, seq_start=0):
    seq = seq_start
    for _ in range(rounds):
        batch = []
        for k in range(keys):
            seq += 1
            meta = DocumentMeta(key=f"key{k:04d}", cas=seq, seqno=seq, rev=seq)
            batch.append(Document(meta, {"pad": "x" * 120, "seq": seq}))
        store.save_docs(batch)
        store.write_header()
    return seq


@pytest.mark.benchmark(group="compaction")
def test_compaction_pass_cost(benchmark):
    def setup():
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        _churn(store, rounds=30, keys=20)
        return (disk, store), {}

    def run(disk, store):
        Compactor(disk).compact(store)

    benchmark.pedantic(run, setup=setup, rounds=10)


@pytest.mark.benchmark(group="compaction")
def test_threshold_tradeoff_report(benchmark):
    """Sweep the fragmentation threshold and report end-state file size
    vs total bytes written (write amplification).  The benchmark times
    one full churn-with-compaction run at the middle threshold."""

    def churn_run():
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        compactor = Compactor(disk, threshold=0.5)
        seq = 0
        for _ in range(40):
            seq = _churn(store, rounds=1, keys=20, seq_start=seq)
            if compactor.needs_compaction(store):
                store = compactor.compact(store)

    benchmark.pedantic(churn_run, rounds=3)
    rows = []
    sizes = {}
    written = {}
    for threshold in (0.2, 0.5, 0.8):
        disk = SimulatedDisk()
        store = VBucketStore(disk, "vb0", 0)
        compactor = Compactor(disk, threshold=threshold)
        seq = 0
        for _ in range(40):
            seq = _churn(store, rounds=1, keys=20, seq_start=seq)
            if compactor.needs_compaction(store):
                store = compactor.compact(store)
        rows.append((
            f"{threshold:.1f}",
            compactor.runs,
            f"{store.file_size:,}",
            f"{disk.stats.bytes_written:,}",
        ))
        sizes[threshold] = store.file_size
        written[threshold] = disk.stats.bytes_written
    print_series(
        "Ablation: compaction threshold vs file size and write amplification",
        ("threshold", "compactions", "final file bytes", "total bytes written"),
        rows,
    )
    # Aggressive compaction keeps files smaller but writes more in total.
    assert sizes[0.2] <= sizes[0.8]
    assert written[0.2] >= written[0.8]
