"""Overload goodput -- the admission-control front door vs the bare
seed behavior (ablation: ``Cluster(admission=False)``).

Two overload shapes from the paper's operational story:

* **N1QL scan storm** (``test_scan_storm_goodput``): every
  ``request_plus`` query runs the GSI consistency barrier, which
  quiesces the whole cluster -- so an unthrottled query storm multiplies
  scheduler work while adding nothing to goodput.  With admission on,
  the n1ql service budget sheds the excess at the front door for free
  and the KV point-op path never notices (shed N1QL before KV).

* **TMPFAIL retry spin** (``test_retry_spin_rounds``): a write storm
  drives a small bucket into *unrecoverable* memory pressure (metadata
  alone approaches the quota, and metadata is not ejectable under value
  eviction).  The seed client reacts to every TemporaryFailureError
  with a full ``run_until_idle()`` quiesce and immediate retry -- eight
  quiesces per doomed op.  The admission path takes bounded relief
  steps plus a virtual-time backoff, and the per-node breaker converts
  the sustained failure run into cheap fail-fast rejections.

Goodput is deterministic here: successful operations per scheduler
round (virtual work units), not wall time.  Self-timed so CI can smoke
it with ``REPRO_ABLATION_ITERS=1``; the acceptance gates only apply
when enough ticks ran for the steady state to dominate.
"""

import itertools
import os

import pytest
from conftest import print_series

from repro import Cluster
from repro.admission import AdmissionConfig
from repro.common.errors import TemporaryFailureError

#: Load ticks per run; each tick is one batch of offered load followed
#: by a virtual-time advance (the inter-arrival gap).
TICKS = int(os.environ.get("REPRO_ABLATION_ITERS", "30"))
MIN_TICKS_FOR_ASSERT = 20

TICK_SECONDS = 0.5
OVERLOAD_MULTIPLIER = 10


# -- shape 1: N1QL scan storm over a healthy KV write load -----------------

KV_PER_TICK = 32
QUERY_BASE = 4  # queries/tick at saturation (= the admitted budget)


def _storm_cluster(admission):
    cluster = Cluster(nodes=2, vbuckets=16, admission=admission)
    cluster.create_bucket("b", replicas=0)
    cluster.query("CREATE INDEX by_v ON b(v) USING GSI")
    client = cluster.connect()
    for i in range(64):
        client.upsert("b", f"seed{i}", {"v": i % 8, "pad": "x" * 64})
    cluster.run_until_idle()
    return cluster, client


def _run_scan_storm(multiplier: int, admission) -> dict:
    cluster, client = _storm_cluster(admission)
    sched = cluster.scheduler
    fresh = itertools.count()
    kv_ok = q_ok = q_shed = 0
    start = sched._round
    for _tick in range(TICKS):
        offered_queries = QUERY_BASE * multiplier
        # Interleave the query storm with the steady KV write load the
        # way concurrent tenants would hit the fabric.
        plan = []
        for i in range(max(KV_PER_TICK, offered_queries)):
            if i < KV_PER_TICK:
                plan.append(("kv", i))
            if i < offered_queries:
                plan.append(("q", i))
        for kind, i in plan:
            if kind == "kv":
                try:
                    client.upsert("b", f"k{next(fresh) % 256}",
                                  {"v": i % 8, "pad": "x" * 64})
                    kv_ok += 1
                except TemporaryFailureError:
                    pass
            else:
                try:
                    cluster.query(
                        "SELECT meta(x).id FROM b x WHERE x.v = $v",
                        {"v": i % 8}, scan_consistency="request_plus")
                    q_ok += 1
                except TemporaryFailureError:
                    q_shed += 1
        sched.advance(TICK_SECONDS)
    rounds = max(1, sched._round - start)
    admission_metrics = cluster.admission.metrics if cluster.admission \
        else None
    return {
        "kv_ok": kv_ok, "q_ok": q_ok, "q_shed": q_shed, "rounds": rounds,
        "goodput": (kv_ok + q_ok) / rounds,
        "shed_n1ql": admission_metrics.counter_value("admission.n1ql.shed")
        if admission_metrics else 0,
        "shed_kv": admission_metrics.counter_value("admission.kv.shed")
        if admission_metrics else 0,
    }


def test_scan_storm_goodput():
    config = AdmissionConfig(
        service_rates={"n1ql": (QUERY_BASE / TICK_SECONDS,
                                float(QUERY_BASE))},
    )
    guarded_1x = _run_scan_storm(1, config)
    guarded_10x = _run_scan_storm(OVERLOAD_MULTIPLIER, config)
    bare_1x = _run_scan_storm(1, False)
    bare_10x = _run_scan_storm(OVERLOAD_MULTIPLIER, False)

    guarded_ratio = guarded_10x["goodput"] / guarded_1x["goodput"]
    bare_ratio = bare_10x["goodput"] / bare_1x["goodput"]

    def row(label, r):
        return (label, r["kv_ok"], r["q_ok"], r["q_shed"], r["rounds"],
                f"{r['goodput']:.2f}")

    print_series(
        f"N1QL scan storm at {OVERLOAD_MULTIPLIER}x saturation "
        f"({TICKS} ticks)",
        ("mode", "kv ok", "q ok", "q shed", "rounds", "goodput"),
        [
            row("admission, 1x", guarded_1x),
            row(f"admission, {OVERLOAD_MULTIPLIER}x", guarded_10x),
            row("bare, 1x", bare_1x),
            row(f"bare, {OVERLOAD_MULTIPLIER}x", bare_10x),
        ],
    )
    print(f"goodput retention: admission {guarded_ratio:.2f}, "
          f"bare {bare_ratio:.2f}")

    if TICKS < MIN_TICKS_FOR_ASSERT:
        return
    # Acceptance gate: goodput at 10x saturation within 20% of goodput
    # at saturation with the front door on ...
    assert guarded_ratio >= 0.8, (
        f"admission goodput fell to {guarded_ratio:.2f} of saturation")
    # ... while the unprotected baseline collapses under the same storm.
    assert bare_ratio < 0.5, (
        f"bare goodput only fell to {bare_ratio:.2f}; storm too weak "
        f"to demonstrate collapse")
    # Degradation order: the storm was shed from the n1ql compartment;
    # not one KV op was refused or lost.
    assert guarded_10x["shed_n1ql"] > 0
    assert guarded_10x["shed_kv"] == 0
    assert guarded_10x["kv_ok"] == KV_PER_TICK * TICKS


# -- shape 2: TMPFAIL retry spin under unrecoverable memory pressure ------

SPIN_TICKS = 2 * TICKS
MIN_SPIN_TICKS_FOR_ASSERT = 50
SPIN_QUOTA = 96 * 1024
SPIN_PUMP_BUDGET = 6  # bounded background work granted per tick
HOT_KEYS = 64
HOT_PER_TICK = 24  # small resident rewrites: the viable traffic
BLOAT_BASE = 4     # 2 KiB inserts to fresh keys: the doomed traffic


def _run_retry_spin(multiplier: int, admission) -> dict:
    cluster = Cluster(nodes=1, vbuckets=8, admission=admission)
    cluster.create_bucket("b", replicas=0, quota_bytes=SPIN_QUOTA,
                          expiry_pager_interval=None)
    client = cluster.connect()
    hot_value = "v" * 16
    bloat_value = "x" * 2048
    fresh = itertools.count()
    sched = cluster.scheduler
    successes = failures = 0
    start = sched._round
    for _tick in range(SPIN_TICKS):
        plan = [f"hot{i % HOT_KEYS}" for i in range(HOT_PER_TICK)]
        plan += [f"new{next(fresh)}"
                 for _ in range(BLOAT_BASE * multiplier)]
        for key in plan:
            try:
                client.upsert("b", key,
                              hot_value if key.startswith("hot")
                              else bloat_value)
                successes += 1
            except TemporaryFailureError:
                failures += 1
        sched.advance(TICK_SECONDS)
        for _ in range(SPIN_PUMP_BUDGET):
            if not sched.step():
                break
    rounds = max(1, sched._round - start)
    engine = cluster.node("node1").engines["b"]
    return {
        "successes": successes, "failures": failures, "rounds": rounds,
        "goodput": successes / rounds,
        "engine_tmpfails": engine.metrics.counter_value("kv.tmpfails"),
    }


def test_retry_spin_rounds():
    guarded = _run_retry_spin(OVERLOAD_MULTIPLIER, True)
    bare = _run_retry_spin(OVERLOAD_MULTIPLIER, False)

    def row(label, r):
        return (label, r["successes"], r["failures"], r["rounds"],
                r["engine_tmpfails"], f"{r['goodput']:.3f}")

    print_series(
        f"TMPFAIL retry spin at {OVERLOAD_MULTIPLIER}x "
        f"({SPIN_TICKS} ticks, {SPIN_QUOTA // 1024} KiB quota)",
        ("mode", "ok", "failed", "rounds", "engine tmpfails", "goodput"),
        [row("admission", guarded), row("bare", bare)],
    )

    if SPIN_TICKS < MIN_SPIN_TICKS_FOR_ASSERT:
        return
    # Fail-fast loses nothing: every op that could have succeeded under
    # the quiesce-spin client still succeeds under breakers + backoff.
    assert guarded["successes"] >= bare["successes"]
    # The seed client pays a full-cluster quiesce per retry, eight per
    # doomed op; the admission path does bounded relief steps and lets
    # the breaker absorb the failure run.
    assert bare["rounds"] > 3 * guarded["rounds"], (
        f"quiesce spin only cost {bare['rounds']} rounds vs "
        f"{guarded['rounds']} with admission")
    # The breaker also shields the engine itself from the retry storm.
    assert guarded["engine_tmpfails"] * 2 < bare["engine_tmpfails"]
