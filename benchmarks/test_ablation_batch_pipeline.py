"""Ablation -- batch-vectorized pipeline + parallel scatter-gather scan.

Section 5.1: a secondary-index scan fans out to every index partition
and the query service merges the per-partition streams.  The Figure 16
reproduction reports per-query *service* time, which in this simulated
cluster is the measured wall time of the executor plus the virtual
network latency the transport charges per RPC wave (the same accounting
the YCSB closed-loop model consumes).  This bench runs the Figure 16
ordered-scan shape over a 3-partition covered index in three
configurations:

* ``row, serial``     -- seed-style pipeline: one generator hop per row,
  one ``gsi_scan`` RPC per partition, back to back.
* ``batch, serial``   -- batch-vectorized operators (BATCH_SIZE rows per
  hop), still serial per-partition scans.
* ``batch + parallel`` -- batch operators over the scatter-gather scan:
  one concurrent ``gsi_scan_page`` wave across all partitions, k-way
  merged, LIMIT short-circuited at the merge frontier.

Self-timed (no pytest-benchmark fixture) so CI can run it as a smoke
test with ``REPRO_ABLATION_ITERS=1``; the 2x acceptance assertion only
applies when enough iterations ran for the percentiles to be
meaningful.  Emits ``BENCH_query_pipeline.json`` at the repo root.
"""

import json
import os
import time

import pytest
from conftest import print_series

from repro import Cluster
from repro.gsi import manager as gsi_manager
from repro.n1ql import batch

ITERS = int(os.environ.get("REPRO_ABLATION_ITERS", "200"))
#: Below this, percentiles are noise; run the modes but skip the gate.
MIN_ITERS_FOR_ASSERT = 50

N_DOCS = 1800
#: Virtual per-RPC latency: charged to ``network.latency_charged``, not
#: slept, so the bench measures RPC *waves* without real waiting.
NETWORK_LATENCY = 0.001
LIMIT = 20

#: Figure 16 ordered-scan shape: covered by the partitioned (age, name)
#: index, sort eliminated, LIMIT pushed into the scan.
SCAN_QUERY = ("SELECT age, name FROM `b` WHERE b.age >= 0 "
              f"ORDER BY b.age LIMIT {LIMIT}")

MODES = [
    ("row, serial", dict(batch_enabled=False, parallel=False)),
    ("batch, serial", dict(batch_enabled=True, parallel=False)),
    ("batch + parallel", dict(batch_enabled=True, parallel=True)),
]


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=4, vbuckets=32, network_latency=NETWORK_LATENCY)
    # Background compaction stays ON: with live tree nodes counted as
    # live bytes the compactor quiesces after the load phase instead of
    # rewriting clean files every pump round, so the bench no longer
    # needs to disable it to measure the query path.
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for base in range(0, N_DOCS, 300):
        client.multi_upsert("b", {
            f"u{i:05d}": {"age": i % 60, "name": f"user{i:05d}"}
            for i in range(base, base + 300)
        })
        cluster.run_until_idle()
    cluster.query('CREATE INDEX by_age ON b(age, name) USING GSI '
                  'WITH {"num_partitions": 3}')
    cluster.run_until_idle()
    return cluster


def _percentile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _timed_samples(cluster, iters: int, *, batch_enabled: bool,
                   parallel: bool) -> list:
    """Per-query service time: executor wall time + virtual network
    latency charged for the query's RPC waves."""
    network = cluster.network
    previous = (batch.BATCH_ENABLED, gsi_manager.PARALLEL_SCAN_ENABLED)
    batch.BATCH_ENABLED = batch_enabled
    gsi_manager.PARALLEL_SCAN_ENABLED = parallel
    try:
        rows = cluster.query(SCAN_QUERY).rows  # warm-up; primes plan cache
        assert len(rows) == LIMIT
        assert [r["age"] for r in rows] == sorted(r["age"] for r in rows)
        samples = []
        for _ in range(iters):
            charged = network.latency_charged
            start = time.perf_counter()
            cluster.query(SCAN_QUERY)
            wall = time.perf_counter() - start
            samples.append(wall + (network.latency_charged - charged))
        return samples
    finally:
        batch.BATCH_ENABLED, gsi_manager.PARALLEL_SCAN_ENABLED = previous


def test_batch_pipeline_ablation(cluster):
    results = {}
    for label, flags in MODES:
        samples = _timed_samples(cluster, ITERS, **flags)
        results[label] = {
            "p50_us": _percentile(samples, 0.50) * 1e6,
            "p95_us": _percentile(samples, 0.95) * 1e6,
            "mean_us": sum(samples) / len(samples) * 1e6,
        }

    baseline = results["row, serial"]["p50_us"]
    print_series(
        "Ablation: batch pipeline + parallel scatter-gather "
        f"(Figure 16 ordered scan, LIMIT {LIMIT}, {ITERS} iters)",
        ("mode", "p50 service", "p95 service", "speedup"),
        [(label,
          f"{stats['p50_us']:.0f} us",
          f"{stats['p95_us']:.0f} us",
          f"{baseline / stats['p50_us']:.2f}x")
         for label, stats in results.items()],
    )

    out = os.path.join(os.path.dirname(__file__), "..",
                       "BENCH_query_pipeline.json")
    with open(out, "w") as handle:
        json.dump({
            "benchmark": "query_pipeline_ablation",
            "query": SCAN_QUERY,
            "docs": N_DOCS,
            "iters": ITERS,
            "network_latency_s": NETWORK_LATENCY,
            "modes": results,
        }, handle, indent=2)
        handle.write("\n")

    if ITERS >= MIN_ITERS_FOR_ASSERT:
        # Acceptance gate: batch + parallel scatter-gather at least
        # halves per-query service time vs the row/serial baseline.
        speedup = baseline / results["batch + parallel"]["p50_us"]
        assert speedup >= 2.0, (
            f"batch+parallel only {speedup:.2f}x faster than row baseline"
        )


def test_limit_drain_is_bounded(cluster):
    """LIMIT-k short circuit: each partition serves at most one page
    beyond the k rows the merge frontier consumed."""
    previous = (batch.BATCH_ENABLED, gsi_manager.PARALLEL_SCAN_ENABLED)
    batch.BATCH_ENABLED = True
    gsi_manager.PARALLEL_SCAN_ENABLED = True
    try:
        nodes = list(cluster.manager.nodes.values())
        before = {node.name: node.metrics.counter_value("gsi.scan_page_rows")
                  for node in nodes}
        rows = cluster.query(SCAN_QUERY, scan_consistency="request_plus").rows
        assert len(rows) == LIMIT
        for node in nodes:
            drained = (node.metrics.counter_value("gsi.scan_page_rows")
                       - before[node.name])
            assert drained <= LIMIT + gsi_manager.SCAN_PAGE_SIZE
    finally:
        batch.BATCH_ENABLED, gsi_manager.PARALLEL_SCAN_ENABLED = previous
