"""Shared fixtures and reporting helpers for the benchmark harness.

Every figure/table of the paper's evaluation (appendix 10.1) has a
benchmark module here.  Benchmarks measure *real* per-operation service
times through the full stack with pytest-benchmark, then (for the two
figures) model the paper's client-thread sweep with the closed-loop MVA
model in :mod:`repro.ycsb.runner` and print the series next to the
paper's reported values.

Scale knob: the paper loads 10 M documents; the default here is small
enough for a laptop run.  Set ``REPRO_YCSB_RECORDS`` to raise it.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro import Cluster
from repro.ycsb import CoreWorkload, YcsbClient, workload_a, workload_e

#: The paper's sweep: 4 clients x 12..32 threads.
THREAD_SWEEP = [48, 64, 80, 96, 112, 128]

RECORDS = int(os.environ.get("REPRO_YCSB_RECORDS", "400"))


def print_series(title: str, header: tuple, rows: list) -> None:
    """Render one figure's series the way the paper tabulates it."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
              for i, h in enumerate(header)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="module")
def ycsb_a_cluster():
    """4-node cluster (all services everywhere, as in Figure 14) loaded
    with the workload-A dataset."""
    cluster = Cluster(nodes=4, vbuckets=64)
    cluster.create_bucket("ycsb")
    workload = CoreWorkload(workload_a(record_count=RECORDS), seed=11)
    client = YcsbClient(cluster, "ycsb", workload)
    client.load()
    return cluster, client


@pytest.fixture(scope="module")
def ycsb_e_cluster():
    """Same topology with ordered keys and the primary GSI index the
    N1QL scan query needs."""
    cluster = Cluster(nodes=4, vbuckets=64)
    cluster.create_bucket("ycsb")
    workload = CoreWorkload(workload_e(record_count=RECORDS), seed=11)
    client = YcsbClient(cluster, "ycsb", workload)
    client.load()
    cluster.query("CREATE PRIMARY INDEX ON ycsb USING GSI")
    cluster.run_until_idle()
    return cluster, client
