"""Ablation -- ad-hoc vs prepared N1QL execution.

Section 4.5.3: "Some operations, like query parsing and planning, are
done serially, while other operations ... are done in a local parallel
manner."  The serial front half is pure per-request overhead for hot
statements; PREPARE/EXECUTE caches the parse and the plan.  This bench
quantifies the cost of the serial phase by running the same statement
both ways.
"""

import pytest
from conftest import print_series

from repro import Cluster

results = {}


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=3, vbuckets=32)
    cluster.create_bucket("b", replicas=0)
    client = cluster.connect()
    for i in range(300):
        client.upsert("b", f"u{i:04d}", {"age": i % 50, "name": f"n{i:04d}"})
    cluster.run_until_idle()
    cluster.query("CREATE INDEX by_age ON b(age) USING GSI")
    cluster.query("PREPARE hot FROM SELECT x.name FROM b x WHERE x.age = $1")
    return cluster


@pytest.mark.benchmark(group="prepared")
def test_adhoc(cluster, benchmark):
    # Ad-hoc statements now hit the plan cache, which would make this
    # identical to EXECUTE; clear it each round so the ad-hoc side
    # actually pays for parse+plan (the serial phase being measured).
    from repro.common.services import Service
    service = cluster.service_node(Service.QUERY).query_service

    def op():
        service.plan_cache.clear()
        return cluster.query(
            "SELECT x.name FROM b x WHERE x.age = $1", params={"1": 17}
        ).rows

    rows = benchmark(op)
    assert len(rows) == 6
    results["ad-hoc (parse+plan+run)"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="prepared")
def test_prepared(cluster, benchmark):
    def op():
        return cluster.query("EXECUTE hot", params={"1": 17}).rows

    rows = benchmark(op)
    assert len(rows) == 6
    results["prepared (run only)"] = benchmark.stats.stats.mean
    _report_and_assert()


def _report_and_assert():
    rows = [(name, f"{value * 1e3:.3f} ms") for name, value in results.items()]
    overhead = (results["ad-hoc (parse+plan+run)"]
                - results["prepared (run only)"])
    rows.append(("serial parse+plan overhead", f"{overhead * 1e3:.3f} ms"))
    print_series(
        "Ablation: ad-hoc vs prepared N1QL execution",
        ("mode", "mean latency"),
        rows,
    )
    assert results["prepared (run only)"] < results["ad-hoc (parse+plan+run)"]
