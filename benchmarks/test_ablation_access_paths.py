"""Ablation -- N1QL access paths (sections 4.5.3 and 5.1).

The paper ranks the access paths: key-value / USE KEYS fastest, covering
index scans next ("covered queries deliver better performance", 5.1.2),
index scan + fetch after that, and PrimaryScan last ("quite expensive,
and the average time to return results increases linearly with number of
documents", 4.5.3 / 5.1.1).  This bench measures all four on the same
data and asserts the ordering.
"""

import pytest
from conftest import print_series

from repro import Cluster

N_DOCS = 300


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=3, vbuckets=32)
    cluster.create_bucket("b")
    client = cluster.connect()
    for i in range(N_DOCS):
        client.upsert("b", f"user{i:05d}", {
            "name": f"name{i:05d}", "age": 20 + i % 50, "city": f"c{i % 7}",
        })
    cluster.run_until_idle()
    cluster.query("CREATE PRIMARY INDEX ON b USING GSI")
    cluster.query("CREATE INDEX cov ON b(age, name) USING GSI")
    cluster.run_until_idle()
    return cluster


results = {}


@pytest.mark.benchmark(group="access-paths")
def test_use_keys(cluster, benchmark):
    def op():
        return cluster.query(
            'SELECT b.name FROM b USE KEYS "user00123"').rows

    rows = benchmark(op)
    assert rows == [{"name": "name00123"}]
    results["use_keys"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="access-paths")
def test_covering_index_scan(cluster, benchmark):
    def op():
        return cluster.query(
            "SELECT b.name FROM b WHERE b.age = 31").rows

    rows = benchmark(op)
    assert len(rows) == N_DOCS // 50
    results["covering"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="access-paths")
def test_index_scan_with_fetch(cluster, benchmark):
    def op():
        return cluster.query(
            "SELECT b.city FROM b WHERE b.age = 31").rows

    rows = benchmark(op)
    assert len(rows) == N_DOCS // 50
    results["index_fetch"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="access-paths")
def test_primary_scan(cluster, benchmark):
    def op():
        return cluster.query(
            "SELECT b.name FROM b WHERE b.city = 'c3'").rows

    rows = benchmark(op)
    assert len(rows) > 0
    results["primary_scan"] = benchmark.stats.stats.mean
    _report_and_assert()


def _report_and_assert():
    assert set(results) == {"use_keys", "covering", "index_fetch",
                            "primary_scan"}
    rows = [
        (name, f"{results[name] * 1e3:.3f} ms")
        for name in ("use_keys", "covering", "index_fetch", "primary_scan")
    ]
    print_series(
        "Ablation: access-path latency (same data, same predicate shape)",
        ("access path", "mean latency"),
        rows,
    )
    # The paper's ordering claims:
    assert results["use_keys"] < results["primary_scan"]
    assert results["covering"] < results["index_fetch"]
    assert results["index_fetch"] < results["primary_scan"]
