"""Figure 15 -- YCSB workload A throughput (ops/sec) vs client threads.

Paper setup (appendix 10.1.1): 4-node cluster, data+index+query services
on every node, 10 M documents, 4 YCSB clients sweeping 12..32 threads
each (48..128 total).  Reported result: ~178K ops/sec at 128 threads,
with the curve rising with offered concurrency and flattening as the
cluster saturates.

Here: pytest-benchmark measures the real mixed read/update operation
through the full stack, and the closed-loop MVA model turns that
service time into the thread sweep.  Expected shape: monotone rise,
saturation at the high end, throughput in the tens-to-hundreds of
thousands of ops/sec.
"""

from conftest import THREAD_SWEEP, print_series

from repro.ycsb.runner import ClusterModel, sweep_threads

#: What the paper's Figure 15 shows at the sweep endpoints (approximate,
#: read off the plot).
PAPER_SERIES = {48: 110_000, 128: 178_000}


def test_figure15_throughput_vs_threads(ycsb_a_cluster, benchmark):
    cluster, client = ycsb_a_cluster

    benchmark.group = "figure15"
    benchmark.name = "ycsb-a mixed op (50% read / 50% update)"
    benchmark(client.run_one)

    service_time = benchmark.stats.stats.mean
    model = ClusterModel(nodes=4)
    points = sweep_threads(service_time, THREAD_SWEEP, model)

    rows = []
    for point in points:
        paper = PAPER_SERIES.get(point.threads, "")
        rows.append((point.threads, f"{point.throughput:,.0f}",
                     f"{paper:,}" if paper else "-"))
    print_series(
        "Figure 15: YCSB-A throughput (ops/sec) vs total client threads",
        ("threads", "modeled ops/sec", "paper ops/sec"),
        rows,
    )
    print(f"measured per-op service time: {service_time * 1e6:.1f} us")

    # Shape assertions: monotone-nondecreasing rise and eventual
    # saturation (the last step adds little).
    throughputs = [p.throughput for p in points]
    assert all(b >= a * 0.999 for a, b in zip(throughputs, throughputs[1:]))
    assert throughputs[-1] > throughputs[0]
    capacity = model.effective_servers / service_time
    assert throughputs[-1] <= capacity * 1.001
