"""Ablation -- memory-optimized vs standard GSI storage (section 6.1.1).

Version 4.5's memory-optimized indexes "reside completely in memory,
dramatically reducing dependence on disk ... allow very fast index scans
... and can keep up with higher mutation rates".  This bench compares
the two storage backends directly on mutation-drain and scan cost, plus
the disk-bytes profile.
"""

import itertools

import pytest
from conftest import print_series

from repro.common.disk import SimulatedDisk
from repro.gsi.storage import make_storage

results = {}
N_PRELOAD = 2000


def _preloaded(kind):
    storage = make_storage(kind, SimulatedDisk(), "bench.index")
    for i in range(N_PRELOAD):
        storage.update_doc(f"d{i:06d}", [[i % 500, f"d{i:06d}"]])
    return storage


@pytest.fixture(scope="module")
def standard():
    return _preloaded("standard")


@pytest.fixture(scope="module")
def memopt():
    return _preloaded("memopt")


_mutation_keys = itertools.count(N_PRELOAD)


@pytest.mark.benchmark(group="memopt-mutations")
def test_standard_mutation_drain(standard, benchmark):
    def op():
        i = next(_mutation_keys)
        standard.update_doc(f"d{i:06d}", [[i % 500, f"d{i:06d}"]])

    benchmark(op)
    results["standard mutation"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="memopt-mutations")
def test_memopt_mutation_drain(memopt, benchmark):
    def op():
        i = next(_mutation_keys)
        memopt.update_doc(f"d{i:06d}", [[i % 500, f"d{i:06d}"]])

    benchmark(op)
    results["memopt mutation"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="memopt-scans")
def test_standard_scan(standard, benchmark):
    def op():
        return list(standard.scan([100], [120]))

    rows = benchmark(op)
    assert rows
    results["standard scan"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="memopt-scans")
def test_memopt_scan(standard, memopt, benchmark):
    def op():
        return list(memopt.scan([100], [120]))

    rows = benchmark(op)
    assert rows
    results["memopt scan"] = benchmark.stats.stats.mean
    _report_and_assert(standard, memopt)


def _report_and_assert(standard, memopt):
    rows = [(name, f"{value * 1e6:.1f} us") for name, value in results.items()]
    rows.append(("standard disk bytes", f"{standard.disk_bytes():,}"))
    rows.append(("memopt disk bytes", f"{memopt.disk_bytes():,}"))
    rows.append(("memopt memory bytes", f"{memopt.memory_bytes():,}"))
    print_series(
        "Ablation: standard (disk B-tree) vs memory-optimized (skiplist) GSI",
        ("metric", "value"),
        rows,
    )
    # The paper's claim is about disk dependence: standard indexes write
    # to disk on every mutation, memopt ones never do.
    assert standard.disk_bytes() > 0
    assert memopt.disk_bytes() == 0
    # Memopt mutations must not be slower than the copy-on-write B-tree
    # (which rewrites a root-to-leaf path per batch).
    assert results["memopt mutation"] < results["standard mutation"]
