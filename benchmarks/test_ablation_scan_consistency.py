"""Ablation -- N1QL scan consistency (section 3.2.3).

``not_bounded`` "returns the query with the lowest latency";
``request_plus`` "executes with higher latencies than the other levels"
because it first waits for the indexer to process every mutation that
existed at request time.  This bench issues each query with a backlog of
un-indexed mutations in front of it and measures the difference.
"""

import pytest
from conftest import print_series

from repro import Cluster

results = {}


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=3, vbuckets=32)
    cluster.create_bucket("b")
    client = cluster.connect()
    for i in range(200):
        client.upsert("b", f"k{i:04d}", {"age": i % 40})
    cluster.run_until_idle()
    cluster.query("CREATE INDEX by_age ON b(age) USING GSI")
    cluster._bench_client = client
    return cluster


def _with_backlog(cluster, consistency):
    """One query with 40 fresh (unindexed) mutations in front of it."""
    client = cluster._bench_client
    def op():
        for i in range(40):
            client.upsert("b", f"hot{i}", {"age": i % 40})
        return cluster.query(
            "SELECT meta(b).id FROM b WHERE b.age = 7",
            scan_consistency=consistency,
        ).rows
    return op


@pytest.mark.benchmark(group="scan-consistency")
def test_not_bounded(cluster, benchmark):
    benchmark(_with_backlog(cluster, "not_bounded"))
    results["not_bounded"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="scan-consistency")
def test_request_plus(cluster, benchmark):
    benchmark(_with_backlog(cluster, "request_plus"))
    results["request_plus"] = benchmark.stats.stats.mean
    _report_and_assert()


def _report_and_assert():
    rows = [(name, f"{value * 1e3:.3f} ms") for name, value in results.items()]
    print_series(
        "Ablation: scan_consistency latency under a write backlog",
        ("consistency", "mean latency"),
        rows,
    )
    # request_plus pays for the consistency barrier.
    assert results["request_plus"] > results["not_bounded"]
