"""Ablation -- write durability options (section 2.3.2).

"Most users choose to receive a response immediately once the data hits
memory, or ... first replicate the data to one other node for safety.
Since replication is memory-to-memory, the latency hit with the
replication option is significantly less than waiting for persistence."

This bench measures the write path with (a) no durability wait, (b)
``replicate_to=1`` (memory-to-memory), and (c) ``persist_to=1`` (wait
for the flusher + fsync), asserting the paper's ordering:
none < replicate_to < persist_to is not guaranteed in wall-clock in a
simulator, but none must be cheapest and both waits must cost more.
"""

import itertools

import pytest
from conftest import print_series

from repro import Cluster

results = {}
_key_counter = itertools.count()


@pytest.fixture(scope="module")
def cluster():
    cluster = Cluster(nodes=3, vbuckets=32)
    cluster.create_bucket("b", replicas=1)
    cluster._bench_client = cluster.connect()
    return cluster


def _write_op(cluster, **durability):
    client = cluster._bench_client

    def op():
        key = f"k{next(_key_counter)}"
        client.upsert("b", key, {"payload": "x" * 256}, **durability)

    return op


@pytest.mark.benchmark(group="durability")
def test_async_write(cluster, benchmark):
    benchmark(_write_op(cluster))
    results["none (memory ack)"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="durability")
def test_replicate_to_one(cluster, benchmark):
    benchmark(_write_op(cluster, replicate_to=1))
    results["replicate_to=1"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="durability")
def test_persist_to_one(cluster, benchmark):
    benchmark(_write_op(cluster, persist_to=1))
    results["persist_to=1"] = benchmark.stats.stats.mean


@pytest.mark.benchmark(group="durability")
def test_replicate_and_persist(cluster, benchmark):
    benchmark(_write_op(cluster, replicate_to=1, persist_to=2))
    results["replicate_to=1 + persist_to=2"] = benchmark.stats.stats.mean
    _report_and_assert()


def _report_and_assert():
    rows = [(name, f"{value * 1e6:.1f} us") for name, value in results.items()]
    print_series(
        "Ablation: write latency by durability requirement",
        ("durability", "mean latency"),
        rows,
    )
    # The async write (ack from memory) must be the cheapest option --
    # that is the entire point of section 2.3.2.
    baseline = results["none (memory ack)"]
    assert baseline <= results["replicate_to=1"]
    assert baseline <= results["persist_to=1"]
    assert baseline <= results["replicate_to=1 + persist_to=2"]
