"""Figure 16 -- YCSB workload E range-query throughput (queries/sec) vs
client threads.

Paper setup (appendix 10.1.2): same 4-node cluster; short ranges of
documents are queried via N1QL instead of individual KV operations,
using exactly::

    SELECT meta().id AS id FROM `bucket` WHERE meta().id >= $1 LIMIT $2

Reported result: ~5,400 queries/sec at 128 client threads -- roughly 33x
below the KV throughput of Figure 15, because each query runs the whole
parse/plan/index-scan pipeline.

Here: pytest-benchmark measures the real N1QL scan through parse ->
plan -> primary-index range scan, and the MVA model produces the sweep.
Expected shape: rise-then-flat, and *much* lower than Figure 15.
"""

from conftest import THREAD_SWEEP, print_series

from repro.ycsb.runner import ClusterModel, sweep_threads

PAPER_SERIES = {48: 4_500, 128: 5_400}


def test_figure16_query_throughput_vs_threads(ycsb_e_cluster, benchmark):
    cluster, client = ycsb_e_cluster
    workload = client.workload

    operations = iter(lambda: workload.next_operation(), None)

    def scan_op():
        op = workload.next_operation()
        while op.kind != "scan":
            op = workload.next_operation()
        client._scan(op.key, op.scan_length)

    benchmark.group = "figure16"
    benchmark.name = "ycsb-e N1QL range query"
    benchmark(scan_op)

    service_time = benchmark.stats.stats.mean
    model = ClusterModel(nodes=4)
    points = sweep_threads(service_time, THREAD_SWEEP, model)

    rows = []
    for point in points:
        paper = PAPER_SERIES.get(point.threads, "")
        rows.append((point.threads, f"{point.throughput:,.0f}",
                     f"{paper:,}" if paper else "-"))
    print_series(
        "Figure 16: YCSB-E N1QL range-query throughput (q/sec) vs threads",
        ("threads", "modeled q/sec", "paper q/sec"),
        rows,
    )
    print(f"measured per-query service time: {service_time * 1e3:.2f} ms")

    throughputs = [p.throughput for p in points]
    assert all(b >= a * 0.999 for a, b in zip(throughputs, throughputs[1:]))
    # Queries must stay far more expensive than KV ops (paper: ~33x
    # lower throughput).  The compiled + plan-cached hot path narrowed
    # the gap considerably, but a range scan still dwarfs a point op.
    assert service_time > 0.0001


def test_figure15_vs_16_gap(ycsb_a_cluster, ycsb_e_cluster, benchmark):
    """The headline cross-figure claim: KV throughput >> N1QL range-query
    throughput on identical hardware."""
    _cluster_a, client_a = ycsb_a_cluster
    _cluster_e, client_e = ycsb_e_cluster

    import time

    def measure(fn, n):
        start = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - start) / n

    kv_time = measure(client_a.run_one, 150)

    def scan_once():
        op = client_e.workload.next_operation()
        while op.kind != "scan":
            op = client_e.workload.next_operation()
        client_e._scan(op.key, op.scan_length)

    benchmark.group = "figure15-vs-16"
    benchmark.name = "kv-vs-query gap"
    benchmark(scan_once)
    query_time = benchmark.stats.stats.mean

    gap = query_time / kv_time
    print(f"\nKV op: {kv_time * 1e6:.1f} us   "
          f"N1QL range query: {query_time * 1e3:.2f} ms   "
          f"gap: {gap:.0f}x (paper: ~33x)")
    # The paper's gap is ~33x; the compiled + plan-cached query path
    # narrows ours, but the ordering must never invert.
    assert gap > 3, "N1QL range queries must be much slower than KV ops"
