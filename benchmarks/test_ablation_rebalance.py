"""Ablation -- rebalance cost (section 4.3.1).

The paper describes rebalance as a per-partition move with an atomic
switchover.  Its cost scales with the data moved, not with total cluster
size, because only the vBuckets that change owner travel.  This bench
measures a scale-out rebalance at three dataset sizes and reports the
moves and wall cost, asserting that minimal-move planning keeps the
moved fraction near the theoretical 1/n.
"""

import pytest
from conftest import print_series

from repro import Cluster


def build_cluster(docs):
    cluster = Cluster(nodes=3, vbuckets=32)
    cluster.create_bucket("b", replicas=1)
    client = cluster.connect()
    for i in range(docs):
        client.upsert("b", f"k{i:05d}", {"i": i, "pad": "x" * 100})
    cluster.run_until_idle()
    return cluster


@pytest.mark.benchmark(group="rebalance")
@pytest.mark.parametrize("docs", [100, 400])
def test_scale_out_rebalance(benchmark, docs):
    reports = []

    def setup():
        cluster = build_cluster(docs)
        cluster.add_node("node4")
        return (cluster,), {}

    def run(cluster):
        reports.append(cluster.rebalance())

    benchmark.pedantic(run, setup=setup, rounds=3)
    moves = reports[-1]["b"]["moves"]
    # 32 vBuckets over 4 nodes: ~8 should move to the new node; the
    # minimal-move planner must not reshuffle everything.
    assert 0 < moves <= 16
    print_series(
        f"Ablation: scale-out rebalance, {docs} docs",
        ("metric", "value"),
        [("vBucket moves (of 32)", moves),
         ("mean wall seconds", f"{benchmark.stats.stats.mean:.3f}")],
    )
